//! Criterion benches for the executor (§3.3): first-match latency and
//! the transitive top-k pruning ablation (DESIGN.md ablation 3) plus the
//! prefix cost-heuristic ablation (ablation 4, via measured stats).

#![forbid(unsafe_code)]
// The deprecated one-shot `search` shim is the cold/stateless baseline
// these benches measure against — kept on purpose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use relm_bench::{Scale, Workbench};
use relm_core::{search, QueryString, SearchQuery};
use relm_lm::DecodingPolicy;

fn setup() -> Workbench {
    Workbench::build(Scale::Smoke)
}

/// A deterministic 140-word random lexicon (LCG-generated, fixed seed):
/// the multi-kilobyte alternation of the fig13 bias-grid query shape,
/// big enough to clear every parallel work gate.
fn lexicon_words() -> Vec<String> {
    let mut seed = 0x9e3779b97f4a7c15u64;
    (0..140)
        .map(|_| {
            (0..8)
                .map(|_| {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    char::from(b'a' + ((seed >> 33) % 26) as u8)
                })
                .collect()
        })
        .collect()
}

fn bench_first_match_latency(c: &mut Criterion) {
    let wb = setup();
    let mut group = c.benchmark_group("first_match");
    group.sample_size(20);
    group.bench_function("url_topk40", |b| {
        b.iter(|| {
            let query = SearchQuery::new(
                QueryString::new(relm_bench::urls::URL_PATTERN)
                    .with_prefix(relm_bench::urls::URL_PREFIX),
            )
            .with_policy(DecodingPolicy::top_k(40))
            .with_max_tokens(24);
            search(&wb.xl, &wb.tokenizer, &query)
                .unwrap()
                .next()
                .expect("a match")
        });
    });
    group.finish();
}

/// Ablation: expanded-node count with and without top-k pruning. Criterion
/// measures time; the node counts are printed once for the record.
fn bench_topk_pruning_ablation(c: &mut Criterion) {
    let wb = setup();
    let query_with = |k: Option<usize>| {
        let policy = match k {
            Some(k) => DecodingPolicy::top_k(k),
            None => DecodingPolicy::unfiltered(),
        };
        SearchQuery::new(QueryString::new("see https://www\\.([a-z]|\\.|/)+"))
            .with_policy(policy)
            .with_max_tokens(16)
            .with_max_expansions(3_000)
    };
    for (label, k) in [("topk40", Some(40)), ("unfiltered", None)] {
        let q = query_with(k);
        let mut results = search(&wb.xl, &wb.tokenizer, &q).unwrap();
        let found = (&mut results).take(5).count();
        println!(
            "[ablation] {label}: {found} matches, {} expansions, {} lm calls",
            results.stats().expansions,
            results.stats().lm_calls
        );
    }
    let mut group = c.benchmark_group("topk_pruning");
    group.sample_size(10);
    for (label, k) in [("topk40", Some(40)), ("unfiltered", None)] {
        let q = query_with(k);
        group.bench_function(label, |b| {
            b.iter(|| search(&wb.xl, &wb.tokenizer, &q).unwrap().take(5).count());
        });
    }
    group.finish();
}

/// Ablation: beam search at several widths vs the complete Dijkstra
/// traversal (match counts printed once; criterion times the searches).
fn bench_beam_vs_dijkstra(c: &mut Criterion) {
    use relm_core::SearchStrategy;
    let wb = setup();
    let base = || {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    let count = |q: &SearchQuery| search(&wb.xl, &wb.tokenizer, q).unwrap().take(10).count();
    println!("[ablation] dijkstra matches: {}", count(&base()));
    for width in [1usize, 8, 64] {
        let q = base().with_strategy(SearchStrategy::Beam { width });
        println!("[ablation] beam{width} matches: {}", count(&q));
    }
    let mut group = c.benchmark_group("beam_vs_dijkstra");
    group.sample_size(10);
    group.bench_function("dijkstra", |b| {
        let q = base();
        b.iter(|| count(&q));
    });
    for width in [1usize, 8, 64] {
        let q = base().with_strategy(SearchStrategy::Beam { width });
        group.bench_function(format!("beam{width}"), |b| {
            b.iter(|| count(&q));
        });
    }
    group.finish();
}

/// The tentpole comparison: every executor scoring through the batched,
/// cache-aware `ScoringEngine` vs. the serial reference path (one
/// uncached model call per context). Results are byte-identical by
/// construction (asserted in `tests/scoring_engine.rs`); this measures
/// the throughput gap and prints the engine's cost model once.
fn bench_scoring_serial_vs_batched(c: &mut Criterion) {
    use relm_core::SearchStrategy;
    use relm_lm::ScoringMode;
    let wb = setup();
    let model = &wb.xl;
    let base = || {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    let strategies: [(&str, SearchQuery); 3] = [
        ("dijkstra", base()),
        (
            "beam16",
            base().with_strategy(SearchStrategy::Beam { width: 16 }),
        ),
        (
            "sampling",
            base().with_strategy(SearchStrategy::RandomSampling { seed: 7 }),
        ),
    ];
    // Print the cost model once per strategy, and record what the
    // measured batch schedule costs on the simulated accelerator
    // (`AcceleratorSim`, the GTX-3080 stand-in that gives the paper's
    // figures their time axis): the serial path pays one kernel launch
    // per evaluation, the batched path amortizes launches over its
    // batch fill. On a 1-core CPU with the cheap n-gram substrate the
    // wall-clock rows below are compile-dominated; these rows are the
    // inference-bound regime the paper measures.
    for (label, query) in &strategies {
        use relm_lm::AcceleratorSim;
        let q = query.clone().with_scoring_mode(ScoringMode::Batched);
        let mut results = search(model, &wb.tokenizer, &q).unwrap();
        let n = (&mut results).take(10).count();
        let stats = results.stats();
        println!(
            "[engine] {label}: {n} matches, {} requests -> {} hits + {} misses in {} batches \
             (mean fill {:.1})",
            stats.lm_calls,
            stats.cache_hits,
            stats.cache_misses,
            stats.batches,
            stats.batched_contexts as f64 / stats.batches.max(1) as f64,
        );
        let qs = query.clone().with_scoring_mode(ScoringMode::Serial);
        let mut serial_results = search(model, &wb.tokenizer, &qs).unwrap();
        let _ = (&mut serial_results).take(10).count();
        let serial_stats = serial_results.stats();
        let mut sim_serial = AcceleratorSim::default();
        for _ in 0..serial_stats.cache_misses {
            sim_serial.forward(1);
        }
        let mut sim_batched = AcceleratorSim::default();
        let mut left = stats.batched_contexts as usize;
        for i in 0..stats.batches as usize {
            let fill = left.div_ceil((stats.batches as usize - i).max(1));
            if fill > 0 {
                sim_batched.forward(fill);
                left -= fill;
            }
        }
        println!(
            "BENCH_JSON {{\"id\":\"scoring_sim/{label}_serial\",\"mean_ns\":{:.1},\"samples\":1}}",
            sim_serial.elapsed_secs() * 1e9
        );
        println!(
            "BENCH_JSON {{\"id\":\"scoring_sim/{label}_batched\",\"mean_ns\":{:.1},\"samples\":1}}",
            sim_batched.elapsed_secs() * 1e9
        );
    }
    let mut group = c.benchmark_group("scoring");
    group.sample_size(10);
    for (label, query) in &strategies {
        for (mode_label, mode) in [
            ("serial", ScoringMode::Serial),
            ("batched", ScoringMode::Batched),
        ] {
            let q = query.clone().with_scoring_mode(mode);
            group.bench_function(format!("{label}_{mode_label}"), |b| {
                b.iter(|| search(model, &wb.tokenizer, &q).unwrap().take(10).count());
            });
        }
    }
    group.finish();
}

/// Engine-level scoring throughput, isolated from query compilation:
/// one batch of frontier-like contexts (with the duplicate/shared-prefix
/// structure real traversals produce) scored serially vs. through the
/// batched engine, over both model families.
///
/// Both model families win from the engine's deduplication alone (the
/// workload revisits shared prefixes); the neural rows add the
/// paper-shaped regime — an expensive forward pass that the crossbeam
/// fan-out additionally amortizes on multi-core hosts, the CPU
/// analogue of filling a GPU batch.
fn bench_engine_throughput(c: &mut Criterion) {
    use relm_lm::{LanguageModel, NeuralLm, NeuralLmConfig, ScoringEngine, ScoringMode};
    let wb = setup();
    let docs = [
        "see https://www.example.com today",
        "see https://www.example.org now",
        "the cat sat on the mat",
        "the dog sat on the log",
    ];
    let doc_refs: Vec<&str> = docs.to_vec();
    let neural = NeuralLm::train(
        &wb.tokenizer,
        &doc_refs,
        NeuralLmConfig {
            epochs: 2,
            embed_dim: 24,
            hidden_dim: 64,
            ..NeuralLmConfig::default()
        },
    );
    let ngram = &wb.xl;
    // Frontier-shaped workload: extensions of a handful of shared
    // prefixes, with revisits. Rounds 1–3 repeat round 0's contexts
    // *exactly* — the duplicate structure real traversals produce when
    // they re-expand a shared prefix — so every row scores precisely
    // the labeled stem × tail workload. (An earlier version instead
    // truncated the last token on odd rounds, which silently scored a
    // different context set than the labels claimed and made the
    // engine-throughput rows incomparable across PRs.)
    let stems = ["see https://www", "see https://ww", "see https", "see", ""];
    let mut contexts: Vec<Vec<relm_bpe::TokenId>> = Vec::new();
    for _round in 0..4 {
        for stem in &stems {
            for tail in ["", ".", "e", "x"] {
                let mut ctx = vec![wb.xl.eos()];
                ctx.extend(wb.tokenizer.encode(&format!("{stem}{tail}")));
                contexts.push(ctx);
            }
        }
    }
    let refs: Vec<&[relm_bpe::TokenId]> = contexts.iter().map(Vec::as_slice).collect();
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(20);
    group.bench_function("ngram_serial", |b| {
        b.iter(|| {
            let engine = ScoringEngine::with_mode(ngram, ScoringMode::Serial);
            engine.score_batch(&refs)
        });
    });
    group.bench_function("ngram_batched", |b| {
        b.iter(|| {
            let engine = ScoringEngine::new(ngram);
            engine.score_batch(&refs)
        });
    });
    group.bench_function("neural_serial", |b| {
        b.iter(|| {
            let engine = ScoringEngine::with_mode(&neural, ScoringMode::Serial);
            engine.score_batch(&refs)
        });
    });
    group.bench_function("neural_batched", |b| {
        b.iter(|| {
            let engine = ScoringEngine::new(&neural);
            engine.score_batch(&refs)
        });
    });
    group.finish();
}

/// The session tentpole: a repeated-query audit (one pattern family,
/// every executor) run cold — stateless `search()`, full compile + cold
/// scoring cache per query — vs warm — one persistent `RelmSession`
/// whose plan memo and shared scoring cache survive across queries.
/// Results are byte-identical (asserted in `tests/session.rs`); this
/// measures the wall-clock gap on the compile-dominated workloads named
/// by `BENCH_*.json`, and prints the session's reuse counters once.
fn bench_session_warm_vs_cold(c: &mut Criterion) {
    use relm_core::{RelmSession, SearchStrategy, SessionConfig};
    let wb = setup();
    let base = || {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    let workloads: [(&str, SearchQuery, usize); 3] = [
        ("url_dijkstra", base(), 5),
        (
            "url_beam16",
            base().with_strategy(SearchStrategy::Beam { width: 16 }),
            5,
        ),
        (
            "url_sampling",
            base().with_strategy(SearchStrategy::RandomSampling { seed: 7 }),
            5,
        ),
    ];

    let mut group = c.benchmark_group("session_cold");
    group.sample_size(10);
    for (label, query, take) in &workloads {
        group.bench_function(*label, |b| {
            b.iter(|| {
                search(&wb.xl, &wb.tokenizer, query)
                    .unwrap()
                    .take(*take)
                    .count()
            });
        });
    }
    group.finish();

    // One session shared by all iterations of all workloads of the
    // family — the audit-battery usage pattern.
    let session = RelmSession::new(&wb.xl, wb.tokenizer.clone());
    let mut group = c.benchmark_group("session_warm");
    group.sample_size(10);
    for (label, query, take) in &workloads {
        group.bench_function(*label, |b| {
            b.iter(|| session.search(query).unwrap().take(*take).count());
        });
    }
    group.finish();
    let stats = session.stats();
    println!(
        "[session] plans: {} hits / {} misses; scoring cache: {} hits / {} misses, \
         {} entries, {} evictions",
        stats.plan_hits,
        stats.plan_misses,
        stats.scoring.hits,
        stats.scoring.misses,
        stats.scoring.entries,
        stats.scoring.evictions,
    );

    // Disk-warm: every iteration boots a *fresh* session (empty memo,
    // cold scoring cache) over a pre-populated plan store, so the row
    // prices "restore compiled plan from disk + execute" against
    // session_cold's "compile + execute" — the serving-replica restart
    // path relm-store exists for.
    let dir = std::env::temp_dir().join(format!("relm-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_config = SessionConfig::new().with_plan_store(&dir);
    {
        let seeder = RelmSession::with_config(&wb.xl, wb.tokenizer.clone(), store_config.clone());
        for (_, query, take) in &workloads {
            seeder.search(query).unwrap().take(*take).count();
        }
        seeder.persist_plans().expect("seed the plan store");
    }
    let mut group = c.benchmark_group("session_warm_disk");
    group.sample_size(10);
    for (label, query, take) in &workloads {
        group.bench_function(*label, |b| {
            b.iter(|| {
                let fresh =
                    RelmSession::with_config(&wb.xl, wb.tokenizer.clone(), store_config.clone());
                fresh.search(query).unwrap().take(*take).count()
            });
        });
    }
    group.finish();
    let fresh = RelmSession::with_config(&wb.xl, wb.tokenizer.clone(), store_config.clone());
    for (_, query, take) in &workloads {
        fresh.search(query).unwrap().take(*take).count();
    }
    let stats = fresh.stats();
    println!(
        "[session disk-warm] plan store: {} disk hits / {} misses across the battery",
        stats.store_hits, stats.store_misses,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The client tentpole: a mixed fig5/fig7-style query set (URL
/// extraction via Dijkstra and beam, bias-template sampling) run
/// sequentially — one query at a time through a fresh client — vs
/// submitted together through `Relm::run_many`, whose interleaving
/// driver coalesces the queries' scoring requests into shared batches.
/// Per-query results are byte-identical (asserted in
/// `tests/client.rs`); this measures the batch-fill gain and the
/// wall-clock delta, and prints the cross-query provenance counters.
fn bench_client_run_many(c: &mut Criterion) {
    use relm_core::{QuerySet, SearchStrategy};
    use relm_datasets::PROFESSIONS;
    let wb = setup();
    let url_query = SearchQuery::new(
        QueryString::new(relm_bench::urls::URL_PATTERN).with_prefix(relm_bench::urls::URL_PREFIX),
    )
    .with_policy(DecodingPolicy::top_k(40))
    .with_max_tokens(20)
    .with_max_expansions(5_000);
    let professions = PROFESSIONS
        .iter()
        .map(|p| format!("({})", relm_regex::escape(p)))
        .collect::<Vec<_>>()
        .join("|");
    let bias_query = |gender: &str, seed: u64| {
        let prefix = format!("The {gender} was trained in");
        let pattern = format!("{prefix} ({professions})\\.");
        SearchQuery::new(QueryString::new(pattern).with_prefix(relm_regex::escape(&prefix)))
            .with_strategy(SearchStrategy::RandomSampling { seed })
            .with_max_tokens(32)
            .with_max_expansions(200_000)
    };
    let specs: Vec<(SearchQuery, usize)> = vec![
        (url_query.clone(), 5),
        (bias_query("man", 7), 8),
        (bias_query("woman", 8), 8),
        (
            url_query.with_strategy(SearchStrategy::Beam { width: 16 }),
            5,
        ),
    ];
    // The default (adaptive-tick) set is what the criterion rows time;
    // the instrumented provenance pass pins TickQuantum::Always so the
    // coalesced schedule itself stays on record.
    let set: QuerySet = specs.iter().cloned().collect();
    let set_always = set
        .clone()
        .with_tick_quantum(relm_core::TickQuantum::Always);

    // One instrumented pass of each mode for the coalescing record.
    let sequential = wb.xl_client();
    let (mut seq_batches, mut seq_contexts) = (0u64, 0u64);
    for (query, take) in &specs {
        let mut results = sequential.search(query).unwrap();
        let _ = (&mut results).take(*take).count();
        let stats = results.stats();
        seq_batches += stats.batches;
        seq_contexts += stats.batched_contexts;
    }
    let seq_mean = seq_contexts as f64 / seq_batches.max(1) as f64;
    let coalesced = wb.xl_client();
    let report = coalesced.run_many(&set_always).unwrap();

    // The adaptive tick quantum's decision on this host/model pairing
    // (results are byte-identical either way; only the schedule moves).
    let adaptive_report = wb.xl_client().run_many(&set).unwrap();
    let adaptive_stats = adaptive_report.outcomes[0].stats;
    println!(
        "[client] adaptive ticks: {} run, {} skipped (model per-tick scoring vs tick overhead)",
        adaptive_stats.coalesce_ticks, adaptive_stats.coalesce_ticks_skipped,
    );
    println!(
        "[client] run_many coalescing: {} queries -> mean batch {:.2} vs sequential {:.2}, \
         {} coalesced batches ({} cross-query), {} contexts in coalesced batches",
        set.len(),
        report.mean_batch_size(),
        seq_mean,
        report.scoring.coalesced_batches,
        report.scoring.cross_query_batches,
        report.scoring.coalesced_contexts,
    );
    assert!(
        report.scoring.cross_query_batches > 0,
        "run_many must produce cross-query shared batches"
    );

    // What the two batch schedules cost on the simulated accelerator
    // (kernel launches amortize over batch fill): the inference-bound
    // regime the paper measures, where bigger shared batches pay off
    // even when the 1-core n-gram wall clock below is compile-bound.
    let sim_schedule = |batches: u64, contexts: u64| {
        use relm_lm::AcceleratorSim;
        let mut sim = AcceleratorSim::default();
        let mut left = contexts as usize;
        for i in 0..batches as usize {
            let fill = left.div_ceil((batches as usize - i).max(1));
            if fill > 0 {
                sim.forward(fill);
                left -= fill;
            }
        }
        sim.elapsed_secs()
    };
    println!(
        "BENCH_JSON {{\"id\":\"client_sim/mixed_sequential\",\"mean_ns\":{:.1},\"samples\":1}}",
        sim_schedule(seq_batches, seq_contexts) * 1e9
    );
    println!(
        "BENCH_JSON {{\"id\":\"client_sim/mixed_coalesced\",\"mean_ns\":{:.1},\"samples\":1}}",
        sim_schedule(report.scoring.batches, report.scoring.batched_contexts) * 1e9
    );

    let mut group = c.benchmark_group("client_run_many");
    group.sample_size(10);
    group.bench_function("mixed_sequential", |b| {
        b.iter(|| {
            let client = wb.xl_client();
            specs
                .iter()
                .map(|(query, take)| client.search(query).unwrap().take(*take).count())
                .sum::<usize>()
        });
    });
    group.bench_function("mixed_coalesced", |b| {
        b.iter(|| {
            let client = wb.xl_client();
            client.run_many(&set).unwrap().total_matches()
        });
    });
    group.finish();
}

/// The sharding tentpole: serial vs sharded token-automaton compile and
/// serial vs sharded frontier expansion on the fig10 full-encoding URL
/// workload. Sharded and serial outputs are structurally identical
/// (asserted here and in `tests/sharding.rs`), so the rows measure
/// wall-clock only. Thread counts are recorded in every BENCH_JSON row:
/// on a single-core host the sharded rows price the worker-pool
/// overhead (they must stay within noise of serial), and the
/// `compile_sharded_model` row prices the divisible work on `threads`
/// cores from first principles — measured scan work divided across the
/// pool on top of the measured non-divisible skeleton.
fn bench_sharding_compile_and_frontier(_c: &mut Criterion) {
    use relm_core::compiler::{compile_full, compile_full_with};
    use relm_core::{Parallelism, SessionConfig};
    use std::time::Instant;

    let wb = setup();
    let threads = 4usize;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The fig10 full-encoding URL workload: the character automaton the
    // shortcut-edge compiler lowers into token space with *all*
    // encodings represented.
    let char_dfa = relm_regex::Regex::compile(relm_bench::urls::URL_PATTERN)
        .unwrap()
        .dfa()
        .clone();
    let serial_built = compile_full(&char_dfa, &wb.tokenizer);
    let sharded_built = compile_full_with(&char_dfa, &wb.tokenizer, Parallelism::sharded(threads));
    assert_eq!(
        serial_built, sharded_built,
        "sharded compile must be structurally identical"
    );
    let index = relm_automata::ShardIndex::build(&char_dfa, threads);
    println!(
        "[sharding] url_full char automaton: {} states, {} token transitions, \
         {:.1}% cross-shard edges across {} shards (host cores: {host_cores})",
        char_dfa.state_count(),
        serial_built.transition_count(),
        index.cross_edge_fraction() * 100.0,
        index.shard_count(),
    );

    // Manual timed rows so the thread count lands in the JSON record.
    let reps = 5u32;
    let timed = |f: &dyn Fn()| -> f64 {
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / f64::from(reps)
    };
    let serial_ns = timed(&|| {
        criterion::black_box(compile_full(&char_dfa, &wb.tokenizer));
    });
    let sharded_ns = timed(&|| {
        criterion::black_box(compile_full_with(
            &char_dfa,
            &wb.tokenizer,
            Parallelism::sharded(threads),
        ));
    });
    // First-principles multicore model: the vocabulary scan is the
    // divisible work (measured as full compile minus the bytes-only
    // skeleton — single-byte edges + automaton assembly, which stay
    // serial); on `threads` cores it divides across the pool.
    let bytes_only = relm_bpe::BpeTokenizer::from_merges(&[]);
    let skeleton_ns = timed(&|| {
        criterion::black_box(compile_full(&char_dfa, &bytes_only));
    });
    let scan_ns = (serial_ns - skeleton_ns).max(0.0);
    let modeled_ns = skeleton_ns + scan_ns / threads as f64;
    println!(
        "[sharding] compile url_full: serial {:.2} ms, sharded({threads}) {:.2} ms wall on \
         {host_cores} core(s); divisible scan {:.2} ms of {:.2} ms -> modeled {:.2} ms on \
         {threads} cores ({:.2}x)",
        serial_ns / 1e6,
        sharded_ns / 1e6,
        scan_ns / 1e6,
        serial_ns / 1e6,
        modeled_ns / 1e6,
        serial_ns / modeled_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_serial/url_full\",\"mean_ns\":{serial_ns:.1},\
         \"samples\":{reps},\"threads\":1,\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_sharded/url_full\",\"mean_ns\":{sharded_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_sharded_model/url_full\",\"mean_ns\":{modeled_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );

    // A lexicon-scale compile (multi-kilobyte alternation, the fig13
    // bias-grid query shape) — enough `states × vocabulary` work to
    // clear the compiler's spawn gate, so the sharded row really runs
    // the worker pool rather than the small-automaton serial fallback.
    let words = lexicon_words();
    let lexicon_pattern = words
        .iter()
        .map(|w| format!("({w})"))
        .collect::<Vec<_>>()
        .join("|");
    let lexicon_dfa = relm_regex::Regex::compile(&lexicon_pattern)
        .unwrap()
        .dfa()
        .clone();
    assert_eq!(
        compile_full(&lexicon_dfa, &wb.tokenizer),
        compile_full_with(&lexicon_dfa, &wb.tokenizer, Parallelism::sharded(threads)),
    );
    let lex_serial_ns = timed(&|| {
        criterion::black_box(compile_full(&lexicon_dfa, &wb.tokenizer));
    });
    let lex_sharded_ns = timed(&|| {
        criterion::black_box(compile_full_with(
            &lexicon_dfa,
            &wb.tokenizer,
            Parallelism::sharded(threads),
        ));
    });
    let lex_skeleton_ns = timed(&|| {
        criterion::black_box(compile_full(&lexicon_dfa, &bytes_only));
    });
    let lex_scan_ns = (lex_serial_ns - lex_skeleton_ns).max(0.0);
    let lex_modeled_ns = lex_skeleton_ns + lex_scan_ns / threads as f64;
    println!(
        "[sharding] compile lexicon_full ({} states): serial {:.2} ms, sharded({threads}) \
         {:.2} ms wall on {host_cores} core(s); modeled {:.2} ms on {threads} cores ({:.2}x)",
        lexicon_dfa.state_count(),
        lex_serial_ns / 1e6,
        lex_sharded_ns / 1e6,
        lex_modeled_ns / 1e6,
        lex_serial_ns / lex_modeled_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_serial/lexicon_full\",\"mean_ns\":{lex_serial_ns:.1},\
         \"samples\":{reps},\"threads\":1,\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_sharded/lexicon_full\",\"mean_ns\":{lex_sharded_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"compile_sharded_model/lexicon_full\",\
         \"mean_ns\":{lex_modeled_ns:.1},\"samples\":{reps},\"threads\":{threads},\
         \"host_cores\":{host_cores}}}"
    );

    // Frontier expansion: the same full-encoding workload executed
    // against the model under serial vs sharded clients (wider frontier
    // shards per step feed larger engine batches; beam levels fan their
    // expansion across the pool). Plans are pre-warmed so the rows
    // isolate execution.
    let full_query = || {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_tokenization(relm_core::TokenizationStrategy::All)
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    let workloads: [(&str, SearchQuery, usize); 2] = [
        ("url_dijkstra", full_query(), 5),
        (
            "url_beam16",
            full_query().with_strategy(relm_core::SearchStrategy::Beam { width: 16 }),
            5,
        ),
    ];
    for (mode_label, par) in [
        ("frontier_serial", Parallelism::Serial),
        ("frontier_sharded", Parallelism::sharded(threads)),
    ] {
        let client = relm_core::Relm::builder(&wb.xl, wb.tokenizer.clone())
            .config(SessionConfig::new().with_parallelism(par))
            .build()
            .unwrap();
        for (label, query, take) in &workloads {
            let plan = client.plan(query).unwrap(); // warm the memo
            let ns = timed(&|| {
                criterion::black_box(client.execute(&plan).unwrap().take(*take).count());
            });
            println!(
                "BENCH_JSON {{\"id\":\"{mode_label}/{label}\",\"mean_ns\":{ns:.1},\
                 \"samples\":{reps},\"threads\":{},\"host_cores\":{host_cores}}}",
                par.threads()
            );
        }
    }
}

/// The pool tentpole: spawn-backed scoring fan-out vs the persistent
/// worker pool on the same frontier-shaped batch, plus the scalar vs
/// vectorized n-gram forward kernel. Pool, spawn, and serial results
/// are byte-identical (asserted in `tests/pool.rs`; the kernel identity
/// is re-asserted inline below), so the rows measure wall-clock only.
/// On a 1-core host the parallel rows price *per-batch overhead* — the
/// persistent pool must beat a fresh thread spawn per batch — and the
/// modeled row prices the batch on `threads` cores from first
/// principles (divisible scoring split across the pool on top of the
/// measured dispatch overhead). The spawn counter is asserted flat
/// across the timed batches: steady state spawns zero threads.
fn bench_pool_vs_spawn(_c: &mut Criterion) {
    use relm_automata::ShardIndex;
    use relm_lm::pool::WorkerPool;
    use relm_lm::{fan_out_scores, pooled_scores, ForwardKernel, LanguageModel, Parallelism};
    use std::time::Instant;

    let wb = setup();
    let threads = 4usize;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Frontier-shaped batch: extensions of shared prefixes, the shape
    // traversals hand `score_batch` (see `bench_engine_throughput`).
    let stems = [
        "see https://www",
        "see https://ww",
        "see https",
        "see",
        "the",
        "",
    ];
    let mut contexts: Vec<Vec<relm_bpe::TokenId>> = Vec::new();
    for round in 0..4 {
        for stem in &stems {
            for tail in ["", ".", "e", "x"] {
                let mut ctx = vec![wb.xl.eos()];
                ctx.extend(wb.tokenizer.encode(&format!("{stem}{tail}")));
                ctx.truncate(1 + (ctx.len() - 1).min(2 + round));
                contexts.push(ctx);
            }
        }
    }
    let refs: Vec<&[relm_bpe::TokenId]> = contexts.iter().map(Vec::as_slice).collect();

    let reps = 5u32;
    let timed = |f: &dyn Fn()| -> f64 {
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_nanos() as f64 / f64::from(reps)
    };

    let serial_ns = timed(&|| {
        criterion::black_box(
            refs.iter()
                .map(|c| wb.xl.next_log_probs(c))
                .collect::<Vec<_>>(),
        );
    });
    let spawn_ns = timed(&|| {
        criterion::black_box(fan_out_scores(&wb.xl, &refs, threads));
    });
    let par = Parallelism::sharded(threads);
    let pool = WorkerPool::for_parallelism(par);
    let _ = pooled_scores(&wb.xl, &refs, par).expect("batch large enough to pool");
    let spawned = pool.spawn_count();
    let pool_ns = timed(&|| {
        criterion::black_box(pooled_scores(&wb.xl, &refs, par).expect("pooled"));
    });
    assert_eq!(
        pool.spawn_count(),
        spawned,
        "steady-state pooled batches must not spawn threads"
    );
    // Per-batch parallel overhead on this host (the number the pool
    // exists to shrink), and the first-principles multicore model: the
    // scoring work divides across `threads` cores on top of the
    // measured pool dispatch overhead.
    let spawn_overhead_ns = (spawn_ns - serial_ns).max(0.0);
    let pool_overhead_ns = (pool_ns - serial_ns).max(0.0);
    let modeled_ns = pool_overhead_ns + serial_ns / threads as f64;
    println!(
        "[pool] batch of {}: serial {:.3} ms; spawn({threads}) {:.3} ms (overhead {:.3} ms), \
         pool({threads}) {:.3} ms (overhead {:.3} ms) on {host_cores} core(s); modeled {:.3} ms \
         on {threads} cores ({:.2}x); pool spawned {spawned} threads total",
        refs.len(),
        serial_ns / 1e6,
        spawn_ns / 1e6,
        spawn_overhead_ns / 1e6,
        pool_ns / 1e6,
        pool_overhead_ns / 1e6,
        modeled_ns / 1e6,
        serial_ns / modeled_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/serial_batch\",\"mean_ns\":{serial_ns:.1},\
         \"samples\":{reps},\"threads\":1,\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/spawn_batch\",\"mean_ns\":{spawn_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/pool_batch\",\"mean_ns\":{pool_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/pool_model\",\"mean_ns\":{modeled_ns:.1},\
         \"samples\":{reps},\"threads\":{threads},\"host_cores\":{host_cores}}}"
    );

    // The paper-shaped regime: an expensive forward pass (the neural
    // substrate) where the divisible scoring work dwarfs pool dispatch,
    // so the modeled multicore row shows a real speedup — the CPU
    // analogue of filling a GPU batch.
    let neural = relm_lm::NeuralLm::train(
        &wb.tokenizer,
        &[
            "see https://www.example.com today",
            "see https://www.example.org now",
            "the cat sat on the mat",
            "the dog sat on the log",
        ],
        relm_lm::NeuralLmConfig {
            epochs: 2,
            embed_dim: 24,
            hidden_dim: 64,
            ..relm_lm::NeuralLmConfig::default()
        },
    );
    let neural_serial_ns = timed(&|| {
        criterion::black_box(
            refs.iter()
                .map(|c| neural.next_log_probs(c))
                .collect::<Vec<_>>(),
        );
    });
    let _ = pooled_scores(&neural, &refs, par).expect("pooled");
    let neural_pool_ns = timed(&|| {
        criterion::black_box(pooled_scores(&neural, &refs, par).expect("pooled"));
    });
    let neural_overhead_ns = (neural_pool_ns - neural_serial_ns).max(0.0);
    let neural_modeled_ns = neural_overhead_ns + neural_serial_ns / threads as f64;
    println!(
        "[pool] neural batch of {}: serial {:.3} ms, pool({threads}) {:.3} ms on {host_cores} \
         core(s); modeled {:.3} ms on {threads} cores ({:.2}x)",
        refs.len(),
        neural_serial_ns / 1e6,
        neural_pool_ns / 1e6,
        neural_modeled_ns / 1e6,
        neural_serial_ns / neural_modeled_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/neural_serial_batch\",\
         \"mean_ns\":{neural_serial_ns:.1},\"samples\":{reps},\"threads\":1,\
         \"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/neural_pool_batch\",\
         \"mean_ns\":{neural_pool_ns:.1},\"samples\":{reps},\"threads\":{threads},\
         \"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"pool_vs_spawn/neural_pool_model\",\
         \"mean_ns\":{neural_modeled_ns:.1},\"samples\":{reps},\"threads\":{threads},\
         \"host_cores\":{host_cores}}}"
    );

    // Scalar vs vectorized forward kernel, identity asserted inline on
    // the exact batch the rows time.
    let scalar_lm = wb.xl.clone().with_kernel(ForwardKernel::Scalar);
    for ctx in &refs {
        let a = scalar_lm.next_log_probs(ctx);
        let b = wb.xl.next_log_probs(ctx);
        assert_eq!(a.len(), b.len());
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits(), "kernels must be bit-identical");
        }
    }
    let scalar_ns = timed(&|| {
        criterion::black_box(
            refs.iter()
                .map(|c| scalar_lm.next_log_probs(c))
                .collect::<Vec<_>>(),
        );
    });
    let vectorized_ns = timed(&|| {
        criterion::black_box(
            refs.iter()
                .map(|c| wb.xl.next_log_probs(c))
                .collect::<Vec<_>>(),
        );
    });
    println!(
        "[pool] forward kernel over {} contexts: scalar {:.3} ms, vectorized {:.3} ms ({:.2}x)",
        refs.len(),
        scalar_ns / 1e6,
        vectorized_ns / 1e6,
        scalar_ns / vectorized_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"score_vectorized/scalar\",\"mean_ns\":{scalar_ns:.1},\
         \"samples\":{reps},\"threads\":1,\"host_cores\":{host_cores}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"score_vectorized/vectorized\",\"mean_ns\":{vectorized_ns:.1},\
         \"samples\":{reps},\"threads\":1,\"host_cores\":{host_cores}}}"
    );

    // The min-cut shard partition vs the equal split it refines: the
    // fraction of automaton edges crossing shard boundaries (lower =
    // less cross-shard frontier traffic for every sharded
    // construction), on the lexicon-scale automaton the sharded
    // constructions actually fan out over.
    let lexicon_pattern = lexicon_words()
        .iter()
        .map(|w| format!("({w})"))
        .collect::<Vec<_>>()
        .join("|");
    let lexicon_dfa = relm_regex::Regex::compile(&lexicon_pattern)
        .unwrap()
        .dfa()
        .clone();
    let equal = ShardIndex::build_equal(&lexicon_dfa, threads);
    let tuned = ShardIndex::build(&lexicon_dfa, threads);
    assert!(
        tuned.cross_edge_fraction() <= equal.cross_edge_fraction(),
        "min-cut must never sever more edges than the equal split"
    );
    println!(
        "[pool] shard partition over {} states, {} shards: cross-edge fraction {:.2}% equal \
         -> {:.2}% min-cut",
        lexicon_dfa.state_count(),
        threads,
        equal.cross_edge_fraction() * 100.0,
        tuned.cross_edge_fraction() * 100.0,
    );
}

/// The serving tentpole: a live `RelmServer` driven by N concurrent
/// protocol clients, each pipelining a mixed URL workload, vs one
/// client doing strict sequential roundtrips of the same queries.
/// Results are byte-identical either way (asserted in `tests/serve.rs`);
/// these rows record the wall-clock per query and — the number the
/// serving layer exists to move — the mean model-batch fill under
/// concurrent admission, where different connections' frontiers
/// coalesce into shared batches.
fn bench_serve_concurrent(_c: &mut Criterion) {
    use relm_serve::{
        spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig, StrategySpec,
    };
    use std::time::Instant;

    let clients = 4u64;
    let url_requests = |base: u64, seed: u64| -> Vec<QueryRequest> {
        vec![
            QueryRequest::new(base, relm_bench::urls::URL_PATTERN, 3)
                .with_prefix(relm_bench::urls::URL_PREFIX)
                .with_top_k(40)
                .with_max_tokens(20),
            QueryRequest::new(base + 1, relm_bench::urls::URL_PATTERN, 3)
                .with_prefix(relm_bench::urls::URL_PREFIX)
                .with_strategy(StrategySpec::Beam { width: 16 })
                .with_top_k(40)
                .with_max_tokens(20),
            QueryRequest::new(base + 2, relm_bench::urls::URL_PATTERN, 3)
                .with_prefix(relm_bench::urls::URL_PREFIX)
                .with_strategy(StrategySpec::Sampling { seed })
                .with_top_k(40)
                .with_max_tokens(20),
        ]
    };
    let queries_per_client = url_requests(0, 0).len() as u64;
    let total = clients * queries_per_client;
    // Each phase gets its own *fresh* server (own plan memo, own
    // scoring cache) so neither measures against the other's warmth.
    // `Workbench::build` is deterministic, so both serve the same
    // world; the server owns its model outright (`spawn` needs
    // `'static`).
    let fresh_server = || {
        let wb = setup();
        let client = relm_core::Relm::new(wb.xl, wb.tokenizer).expect("workbench pair is valid");
        spawn(
            RelmServer::with_config(client, ServerConfig::new()),
            "127.0.0.1:0",
        )
        .expect("bind")
    };

    // Sequential baseline: same queries, one connection, strict
    // roundtrips — no two queries ever in flight together.
    let handle = fresh_server();
    let addr = handle.addr();
    let sequential_start = Instant::now();
    {
        let mut peer = ServeClient::connect(addr).expect("connect");
        for t in 0..clients {
            for request in url_requests(10 * t, 7 + t) {
                match peer.roundtrip(&Request::Query(request)).expect("roundtrip") {
                    Response::Matches { .. } => {}
                    other => panic!("serve bench got {other:?}"),
                }
            }
        }
    }
    let sequential_ns = sequential_start.elapsed().as_nanos() as f64 / total as f64;
    let sequential_report = handle.stop().expect("server report");

    // Concurrent phase: N connections, all queries pipelined, so the
    // driver interleaves every live query through shared ticks.
    let handle = fresh_server();
    let addr = handle.addr();
    let concurrent_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || {
                let mut peer = ServeClient::connect(addr).expect("connect");
                let requests = url_requests(10 * t, 7 + t);
                for request in &requests {
                    peer.send(&Request::Query(request.clone())).expect("send");
                }
                for _ in 0..requests.len() {
                    match peer.recv().expect("recv") {
                        Response::Matches { .. } => {}
                        other => panic!("serve bench got {other:?}"),
                    }
                }
            });
        }
    });
    let concurrent_ns = concurrent_start.elapsed().as_nanos() as f64 / total as f64;
    let concurrent_report = handle.stop().expect("server report");
    assert!(
        concurrent_report.cross_query_batches > 0,
        "concurrent serving must coalesce across queries: {concurrent_report:?}"
    );

    println!(
        "[serve] {clients} clients x {queries_per_client} queries: mean batch fill {:.2} \
         under concurrent admission vs {:.2} sequential ({} cross-query batches), \
         {:.2} ms/query concurrent vs {:.2} ms/query sequential roundtrips; \
         {} ticks run, {} skipped",
        concurrent_report.mean_batch_fill,
        sequential_report.mean_batch_fill,
        concurrent_report.cross_query_batches,
        concurrent_ns / 1e6,
        sequential_ns / 1e6,
        concurrent_report.ticks_run,
        concurrent_report.ticks_skipped,
    );
    println!(
        "BENCH_JSON {{\"id\":\"serve/concurrent_mixed\",\"mean_ns\":{concurrent_ns:.1},\
         \"samples\":{total},\"clients\":{clients},\"mean_batch_fill\":{:.3},\
         \"cross_query_batches\":{}}}",
        concurrent_report.mean_batch_fill, concurrent_report.cross_query_batches
    );
    println!(
        "BENCH_JSON {{\"id\":\"serve/sequential_roundtrips\",\"mean_ns\":{sequential_ns:.1},\
         \"samples\":{total},\"clients\":1,\"mean_batch_fill\":{:.3},\
         \"cross_query_batches\":{}}}",
        sequential_report.mean_batch_fill, sequential_report.cross_query_batches
    );
}

/// The speculation tentpole: the sampling-heavy mixed query set run
/// through `run_many` with speculative scoring off vs on. Results are
/// byte-identical either way (asserted in `tests/speculation.rs` for
/// solo, `run_many`, and the served path); these rows record the
/// wall-clock delta, the speculation hit rate, and — the number the
/// driver slack-fill exists to move — the mean fill of the driver's
/// coalesced tick batches once slack capacity is topped up with
/// speculative contexts from other queries' walks.
fn bench_speculation_slack_fill(_c: &mut Criterion) {
    use relm_core::{QuerySet, SearchStrategy, Speculation, TickQuantum};
    use relm_datasets::PROFESSIONS;
    use std::time::Instant;

    let wb = setup();
    let professions = PROFESSIONS
        .iter()
        .map(|p| format!("({})", relm_regex::escape(p)))
        .collect::<Vec<_>>()
        .join("|");
    let bias_query = |gender: &str, seed: u64| {
        let prefix = format!("The {gender} was trained in");
        let pattern = format!("{prefix} ({professions})\\.");
        SearchQuery::new(QueryString::new(pattern).with_prefix(relm_regex::escape(&prefix)))
            .with_strategy(SearchStrategy::RandomSampling { seed })
            .with_max_tokens(32)
            .with_max_expansions(200_000)
    };
    let url_sampling = |seed: u64| {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_strategy(SearchStrategy::RandomSampling { seed })
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    // Sampling-dominated so the walks' pending successors feed the
    // driver's slack fill; TickQuantum::Always keeps the coalesced
    // schedule itself on record rather than the adaptive fallback.
    let specs: Vec<(SearchQuery, usize)> = vec![
        (bias_query("man", 7), 8),
        (bias_query("woman", 8), 8),
        (url_sampling(11), 5),
        (url_sampling(29), 5),
    ];
    let set: QuerySet = specs.iter().cloned().collect();
    let set = set.with_tick_quantum(TickQuantum::Always);

    let reps = 3u32;
    // Fresh client per pass: speculation prices cold scoring caches (a
    // warm cache leaves it nothing to pre-score).
    let run = |spec: Speculation| {
        let client_for = || {
            relm_core::Relm::builder(&wb.xl, wb.tokenizer.clone())
                .speculation(spec)
                .build()
                .expect("workbench pair is valid")
        };
        let report = client_for().run_many(&set).expect("instrumented pass");
        let start = Instant::now();
        for _ in 0..reps {
            criterion::black_box(client_for().run_many(&set).expect("timed pass"));
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(reps);
        (ns, report)
    };
    let (off_ns, off_report) = run(Speculation::off());
    let (on_ns, on_report) = run(Speculation::new());

    let agg = |report: &relm_core::QuerySetReport| {
        let mut s = relm_core::ExecutionStats::default();
        for outcome in &report.outcomes {
            s.speculative_scored += outcome.stats.speculative_scored;
            s.speculation_hits += outcome.stats.speculation_hits;
            s.speculation_wasted += outcome.stats.speculation_wasted;
        }
        s
    };
    let off_stats = agg(&off_report);
    let on_stats = agg(&on_report);
    assert_eq!(
        off_stats.speculative_scored, 0,
        "speculation off must pre-score nothing"
    );
    assert!(
        on_stats.speculative_scored > 0 && on_stats.speculation_hits > 0,
        "speculation on must pre-score contexts the walks then consume: {on_stats:?}"
    );
    assert!(
        on_report.scoring.speculative_batches > 0,
        "speculative lookahead must land in attributed engine batches"
    );
    relm_bench::report::speculation_stats("run_many_mixed", &on_stats);

    // Mean fill of the driver's coalesced tick batches: slack fill tops
    // partially-filled ticks up with speculative contexts, so the on
    // row's fill must not regress (and rises whenever slack exists).
    let tick_fill = |scoring: &relm_lm::ScoringStats| {
        scoring.coalesced_contexts as f64 / scoring.coalesced_batches.max(1) as f64
    };
    let off_fill = tick_fill(&off_report.scoring);
    let on_fill = tick_fill(&on_report.scoring);
    let hit_rate = on_stats.speculation_hits as f64 / on_stats.speculative_scored.max(1) as f64;
    assert!(
        on_fill > off_fill,
        "driver slack fill must raise the mean coalesced tick fill: \
         {on_fill:.2} on vs {off_fill:.2} off"
    );
    println!(
        "[speculation] driver slack fill: mean tick fill {off_fill:.2} -> {on_fill:.2} \
         ({} -> {} contexts over {} -> {} coalesced batches), {:.0}% hit rate",
        off_report.scoring.coalesced_contexts,
        on_report.scoring.coalesced_contexts,
        off_report.scoring.coalesced_batches,
        on_report.scoring.coalesced_batches,
        100.0 * hit_rate,
    );
    // What the two *engine-wide* batch schedules cost on the simulated
    // accelerator (kernel launches amortize over batch fill): without
    // speculation every walk step pays a singleton demand forward; with
    // it the lookahead scores top-K successors per launch and the walk
    // steps become cache hits, so the schedule trades launches for
    // batch fill — the inference-bound regime where mis-speculation is
    // cheaper than an extra kernel launch, even when the 1-core n-gram
    // wall clock above is not.
    let sim_schedule = |batches: u64, contexts: u64| {
        use relm_lm::AcceleratorSim;
        let mut sim = AcceleratorSim::default();
        let mut left = contexts as usize;
        for i in 0..batches as usize {
            let fill = left.div_ceil((batches as usize - i).max(1));
            if fill > 0 {
                sim.forward(fill);
                left -= fill;
            }
        }
        sim.elapsed_secs()
    };
    let off_engine_fill = off_report.scoring.mean_batch_size();
    let on_engine_fill = on_report.scoring.mean_batch_size();
    let off_sim_ns = sim_schedule(
        off_report.scoring.batches,
        off_report.scoring.batched_contexts,
    ) * 1e9;
    let on_sim_ns = sim_schedule(
        on_report.scoring.batches,
        on_report.scoring.batched_contexts,
    ) * 1e9;
    assert!(
        on_sim_ns < off_sim_ns,
        "speculative batching must win on the launch-dominated accelerator sim: \
         {on_sim_ns:.0} ns on vs {off_sim_ns:.0} ns off"
    );
    println!(
        "[speculation] engine schedule: mean batch fill {off_engine_fill:.2} -> \
         {on_engine_fill:.2} ({} -> {} launches), accelerator-sim {:.1} ms -> {:.1} ms \
         ({:.2}x)",
        off_report.scoring.batches,
        on_report.scoring.batches,
        off_sim_ns / 1e6,
        on_sim_ns / 1e6,
        off_sim_ns / on_sim_ns.max(1.0),
    );
    println!(
        "BENCH_JSON {{\"id\":\"speculation/off\",\"mean_ns\":{off_ns:.1},\"samples\":{reps},\
         \"hit_rate\":0.000,\"mean_batch_fill\":{off_engine_fill:.3},\
         \"sim_ns\":{off_sim_ns:.1}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"speculation/on\",\"mean_ns\":{on_ns:.1},\"samples\":{reps},\
         \"hit_rate\":{hit_rate:.3},\"mean_batch_fill\":{on_engine_fill:.3},\
         \"sim_ns\":{on_sim_ns:.1}}}"
    );
    println!(
        "BENCH_JSON {{\"id\":\"driver_slack_fill\",\"mean_ns\":{on_sim_ns:.1},\"samples\":1,\
         \"hit_rate\":{hit_rate:.3},\"mean_batch_fill\":{on_fill:.3},\
         \"baseline_fill\":{off_fill:.3}}}"
    );
}

/// The sharded-serving tentpole: the same saturating open-loop trace
/// (heavy-tailed arrivals, 8 pipelined clients, all three executors)
/// replayed against 1, 2, and 4 driver shards. Results are
/// byte-identical at every shard count (asserted in
/// `tests/serve_sharded.rs`); these rows record capacity. The
/// container pins everything to one core, so the *measured* rows stay
/// flat — shards contend for the same CPU; the *modeled* rows apply
/// the measured per-query cost to N cores Amdahl-style, with the
/// serialized slice (protocol + admission, measured as a pure stats
/// roundtrip) as the floor no shard count crosses. A final burst
/// against a tiny global in-flight cap records backpressure doing its
/// job: typed busy frames, not stalls.
fn bench_serve_shards(_c: &mut Criterion) {
    use relm_serve::{
        loadgen, spawn, LoadgenConfig, QueryRequest, RelmServer, Request, Response, ServeClient,
        ServerConfig, StrategySpec,
    };
    use std::time::Instant;

    // The demo-corpus fixture (`relm_server`'s built-in model): the
    // loadgen's default trace targets its patterns, mirroring the CI
    // smoke job.
    const DOCS: [&str; 4] = [
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
    ];
    let fresh_server = |shards: usize, max_inflight: usize| {
        let corpus = DOCS.join(". ");
        let tokenizer = relm_bpe::BpeTokenizer::train(&corpus, 80);
        let model = relm_lm::NGramLm::train(&tokenizer, &DOCS, relm_lm::NGramConfig::xl());
        let client = relm_core::Relm::new(model, tokenizer).expect("demo pair is valid");
        spawn(
            RelmServer::with_config(
                client,
                ServerConfig::new()
                    .with_shards(shards)
                    .with_max_inflight(max_inflight),
            ),
            "127.0.0.1:0",
        )
        .expect("bind")
    };

    // Offered load well above single-shard capacity, so achieved QPS
    // reads as capacity, not as the arrival rate echoed back.
    let trace = LoadgenConfig {
        clients: 8,
        arrivals: 48,
        mean_interarrival_us: 250.0,
        seed: 29,
        take: 2,
        ..LoadgenConfig::default()
    };

    // The serialized slice of one served query: protocol parse +
    // frame + connection pump with zero engine work. Measured as a
    // *pipelined* stats burst (all requests on the wire, then all
    // responses) so reactor park latency amortizes away and what's
    // left is per-request processing — the work that still runs
    // one-at-a-time per connection no matter how many shards exist.
    let handle = fresh_server(1, 1024);
    let serial_ns = {
        let mut peer = ServeClient::connect(handle.addr()).expect("connect");
        // Warm the path once so the burst measures steady state.
        peer.roundtrip(&Request::Stats).expect("stats");
        let reps = 500u32;
        let start = Instant::now();
        for _ in 0..reps {
            peer.send(&Request::Stats).expect("send");
        }
        for _ in 0..reps {
            match peer.recv().expect("recv") {
                Response::Stats(_) => {}
                other => panic!("serve_shards bench got {other:?}"),
            }
        }
        start.elapsed().as_nanos() as f64 / f64::from(reps)
    };
    handle.stop().expect("server report");

    let mut single_shard_ns = 0.0f64;
    for shards in [1usize, 2, 4] {
        let handle = fresh_server(shards, 1024);
        let report = loadgen::run(handle.addr(), &trace).expect("load run");
        let server_report = handle.stop().expect("server report");
        assert_eq!(
            report.completed, trace.arrivals as u64,
            "every query answered: {report:?}"
        );
        assert_eq!(server_report.shards.len(), shards);
        let measured_ns = 1e9 / report.achieved_qps;
        if shards == 1 {
            single_shard_ns = measured_ns;
        }
        // Amdahl on N cores: each core retires total/N of the
        // per-query work, but the serialized slice is a hard floor.
        let modeled_ns = serial_ns.max(single_shard_ns / shards as f64);
        let modeled_qps = 1e9 / modeled_ns;
        println!(
            "[serve_shards] {shards} shards: measured {:.1} qps (p99 {} us, 1-core \
             container), modeled {modeled_qps:.1} qps on {shards} cores \
             (serial slice {:.1} us)",
            report.achieved_qps,
            report.p99_us,
            serial_ns / 1e3,
        );
        println!(
            "BENCH_JSON {{\"id\":\"serve_shards/{shards}\",\"mean_ns\":{measured_ns:.1},\
             \"samples\":{},\"shards\":{shards},\"measured_qps\":{:.1},\
             \"modeled_qps\":{modeled_qps:.1},\"p99_us\":{},\"serial_ns\":{serial_ns:.1}}}",
            trace.arrivals, report.achieved_qps, report.p99_us
        );
        if shards == 4 {
            let speedup = single_shard_ns / modeled_ns;
            assert!(
                speedup >= 2.5,
                "4-shard modeled speedup must clear 2.5x: got {speedup:.2}x \
                 (serial {serial_ns:.0} ns vs total {single_shard_ns:.0} ns)"
            );
        }
    }

    // Backpressure under a burst: a global cap of 2 against a 12-deep
    // pipeline of slow sampling walks must refuse the overflow with
    // typed busy frames and still answer everything it admitted.
    let handle = fresh_server(2, 2);
    let mut peer = ServeClient::connect(handle.addr()).expect("connect");
    let burst = 12u64;
    for id in 0..burst {
        peer.send(&Request::Query(
            QueryRequest::new(id, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 20)
                .with_strategy(StrategySpec::Sampling { seed: 43 + id })
                .with_max_tokens(16),
        ))
        .expect("send");
    }
    let (mut completed, mut busy) = (0u64, 0u64);
    for _ in 0..burst {
        match peer.recv().expect("recv") {
            Response::Matches { .. } => completed += 1,
            Response::Busy { .. } => busy += 1,
            other => panic!("serve_shards burst got {other:?}"),
        }
    }
    drop(peer);
    let report = handle.stop().expect("server report");
    assert!(
        busy > 0,
        "a 12-deep burst against a cap of 2 must trip backpressure"
    );
    assert_eq!(completed + busy, burst);
    assert_eq!(report.busy_rejections, busy);
    println!(
        "[serve_shards] burst vs cap 2: {completed} completed, {busy} busy-refused \
         of {burst} pipelined"
    );
    println!(
        "BENCH_JSON {{\"id\":\"serve_shards/busy_burst\",\"mean_ns\":0.0,\
         \"samples\":{burst},\"completed\":{completed},\"busy\":{busy}}}"
    );
}

criterion_group!(
    benches,
    bench_first_match_latency,
    bench_topk_pruning_ablation,
    bench_beam_vs_dijkstra,
    bench_scoring_serial_vs_batched,
    bench_engine_throughput,
    bench_session_warm_vs_cold,
    bench_client_run_many,
    bench_sharding_compile_and_frontier,
    bench_pool_vs_spawn,
    bench_speculation_slack_fill,
    bench_serve_concurrent,
    bench_serve_shards
);
criterion_main!(benches);
