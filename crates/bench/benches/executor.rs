//! Criterion benches for the executor (§3.3): first-match latency and
//! the transitive top-k pruning ablation (DESIGN.md ablation 3) plus the
//! prefix cost-heuristic ablation (ablation 4, via measured stats).

use criterion::{criterion_group, criterion_main, Criterion};
use relm_bench::{Scale, Workbench};
use relm_core::{search, QueryString, SearchQuery};
use relm_lm::DecodingPolicy;

fn setup() -> Workbench {
    Workbench::build(Scale::Smoke)
}

fn bench_first_match_latency(c: &mut Criterion) {
    let wb = setup();
    let mut group = c.benchmark_group("first_match");
    group.sample_size(20);
    group.bench_function("url_topk40", |b| {
        b.iter(|| {
            let query = SearchQuery::new(
                QueryString::new(relm_bench::urls::URL_PATTERN)
                    .with_prefix(relm_bench::urls::URL_PREFIX),
            )
            .with_policy(DecodingPolicy::top_k(40))
            .with_max_tokens(24);
            search(&wb.xl, &wb.tokenizer, &query)
                .unwrap()
                .next()
                .expect("a match")
        });
    });
    group.finish();
}

/// Ablation: expanded-node count with and without top-k pruning. Criterion
/// measures time; the node counts are printed once for the record.
fn bench_topk_pruning_ablation(c: &mut Criterion) {
    let wb = setup();
    let query_with = |k: Option<usize>| {
        let policy = match k {
            Some(k) => DecodingPolicy::top_k(k),
            None => DecodingPolicy::unfiltered(),
        };
        SearchQuery::new(QueryString::new("see https://www\\.([a-z]|\\.|/)+"))
            .with_policy(policy)
            .with_max_tokens(16)
            .with_max_expansions(3_000)
    };
    for (label, k) in [("topk40", Some(40)), ("unfiltered", None)] {
        let q = query_with(k);
        let mut results = search(&wb.xl, &wb.tokenizer, &q).unwrap();
        let found = (&mut results).take(5).count();
        println!(
            "[ablation] {label}: {found} matches, {} expansions, {} lm calls",
            results.stats().expansions,
            results.stats().lm_calls
        );
    }
    let mut group = c.benchmark_group("topk_pruning");
    group.sample_size(10);
    for (label, k) in [("topk40", Some(40)), ("unfiltered", None)] {
        let q = query_with(k);
        group.bench_function(label, |b| {
            b.iter(|| {
                search(&wb.xl, &wb.tokenizer, &q)
                    .unwrap()
                    .take(5)
                    .count()
            });
        });
    }
    group.finish();
}

/// Ablation: beam search at several widths vs the complete Dijkstra
/// traversal (match counts printed once; criterion times the searches).
fn bench_beam_vs_dijkstra(c: &mut Criterion) {
    use relm_core::SearchStrategy;
    let wb = setup();
    let base = || {
        SearchQuery::new(
            QueryString::new(relm_bench::urls::URL_PATTERN)
                .with_prefix(relm_bench::urls::URL_PREFIX),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(20)
        .with_max_expansions(5_000)
    };
    let count = |q: &SearchQuery| {
        search(&wb.xl, &wb.tokenizer, q).unwrap().take(10).count()
    };
    println!("[ablation] dijkstra matches: {}", count(&base()));
    for width in [1usize, 8, 64] {
        let q = base().with_strategy(SearchStrategy::Beam { width });
        println!("[ablation] beam{width} matches: {}", count(&q));
    }
    let mut group = c.benchmark_group("beam_vs_dijkstra");
    group.sample_size(10);
    group.bench_function("dijkstra", |b| {
        let q = base();
        b.iter(|| count(&q));
    });
    for width in [1usize, 8, 64] {
        let q = base().with_strategy(SearchStrategy::Beam { width });
        group.bench_function(format!("beam{width}"), |b| {
            b.iter(|| count(&q));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_first_match_latency,
    bench_topk_pruning_ablation,
    bench_beam_vs_dijkstra
);
criterion_main!(benches);
