//! Criterion benches for Levenshtein-automaton construction and
//! composition (§3.4): distance 1 directly vs distance 2 via chaining.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use relm_automata::{ascii_alphabet, levenshtein_within, str_symbols, Nfa};

fn bench_levenshtein(c: &mut Criterion) {
    let alphabet = ascii_alphabet();
    let source = Nfa::literal(str_symbols("The man was trained in medicine"));
    let mut group = c.benchmark_group("levenshtein");
    group.sample_size(20);
    group.bench_function("distance1_build", |b| {
        b.iter(|| levenshtein_within(&source, 1, &alphabet));
    });
    group.bench_function("distance1_determinize", |b| {
        b.iter(|| levenshtein_within(&source, 1, &alphabet).determinize());
    });
    group.bench_function("distance2_direct", |b| {
        b.iter(|| levenshtein_within(&source, 2, &alphabet));
    });
    group.bench_function("distance2_chained", |b| {
        b.iter(|| {
            let d1 = levenshtein_within(&source, 1, &alphabet);
            levenshtein_within(&d1, 1, &alphabet)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_levenshtein);
criterion_main!(benches);
