//! Criterion benches for the BPE tokenizer: canonical encode, ambiguous
//! enumeration, and the encoding-count dynamic program.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relm_bpe::BpeTokenizer;

fn fixture() -> BpeTokenizer {
    let corpus = "the quick brown fox jumps over the lazy dog. \
                  she sells sea shells by the sea shore. \
                  https://www.example.com/articles of interest."
        .repeat(8);
    BpeTokenizer::train(&corpus, 400)
}

fn bench_encode(c: &mut Criterion) {
    let tok = fixture();
    let texts = [
        ("short", "the quick brown fox"),
        ("sentence", "she sells sea shells by the sea shore."),
        ("url", "https://www.example.com/articles"),
    ];
    let mut group = c.benchmark_group("bpe_encode");
    for (name, text) in texts {
        group.bench_with_input(BenchmarkId::from_parameter(name), text, |b, t| {
            b.iter(|| tok.encode(t));
        });
    }
    group.finish();
}

fn bench_all_encodings(c: &mut Criterion) {
    let tok = fixture();
    let mut group = c.benchmark_group("bpe_ambiguous");
    group.bench_function("all_encodings_cap256", |b| {
        b.iter(|| tok.all_encodings("the quick", 256));
    });
    group.bench_function("count_encodings", |b| {
        b.iter(|| tok.count_encodings("she sells sea shells by the sea shore."));
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_all_encodings);
criterion_main!(benches);
