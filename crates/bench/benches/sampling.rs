//! Criterion benches for randomized traversal: walk-table construction
//! and per-sample cost, normalized vs uniform-edge prefix sampling
//! (DESIGN.md ablation 2).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use relm_automata::WalkTable;
use relm_bench::{Scale, Workbench};
use relm_core::{PrefixSampling, QueryString, SearchQuery, SearchStrategy};
use relm_regex::Regex;

fn bench_walk_table(c: &mut Criterion) {
    let dfa = Regex::compile("The ((man)|(woman)) was trained in ([a-z ]){3,24}")
        .unwrap()
        .dfa()
        .clone();
    let mut group = c.benchmark_group("walk_table");
    for max_len in [32usize, 64, 128] {
        group.bench_function(format!("build_len{max_len}"), |b| {
            b.iter(|| WalkTable::new(&dfa, max_len));
        });
    }
    group.finish();
}

fn bench_sampling_modes(c: &mut Criterion) {
    let wb = Workbench::build(Scale::Smoke);
    let client = wb.xl_client();
    let mut group = c.benchmark_group("sampling_mode");
    group.sample_size(10);
    for (label, mode) in [
        ("normalized", PrefixSampling::Normalized),
        ("uniform_edges", PrefixSampling::UniformEdges),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let prefix = "The ((man)|(woman)) was trained in";
                let pattern = format!("{prefix} ((art)|(science)|(medicine))\\.");
                let query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix))
                    .with_strategy(SearchStrategy::RandomSampling { seed: 1 })
                    .with_prefix_sampling(mode)
                    .with_max_tokens(32);
                client.search(&query).unwrap().take(10).count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk_table, bench_sampling_modes);
criterion_main!(benches);
