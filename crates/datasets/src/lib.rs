//! Synthetic data substrates for the ReLM-rs evaluation.
//!
//! The paper's experiments consume resources we cannot ship or reach:
//! GPT-2's training corpus and the live internet (§4.1 URL validation),
//! The Pile (§4.3), LAMBADA (§4.4), and NLTK stop words. This crate
//! builds deterministic, seeded equivalents that exercise the same code
//! paths (each substitution is documented in `DESIGN.md`):
//!
//! * [`SyntheticWorld`] — one call that generates a coherent universe:
//!   a training corpus with *planted* URLs, gender–profession bias, and
//!   explicit "toxic" sentences; the set of valid URLs standing in for
//!   the live web; a Pile-like shard; and a LAMBADA-like cloze set.
//! * [`UrlWorld`] — membership-based URL validation replacing HTTP
//!   requests.
//! * [`PileShard`] + [`scan_for_insults`] — a grep-style scanner over the
//!   shard, replacing `grep` over The Pile's first file.
//! * [`ClozeSet`] — long-context last-word prediction items.
//! * [`stop_words`] — an embedded English stop-word list.
//!
//! Toxicity note: the paper greps for six strong insults. We use mild
//! placeholder insults ("nitwit", …) — the *mechanics* (regex match →
//! prompt construction → extraction) are identical, and the repository
//! stays free of slurs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cloze;
mod corpus;
mod pile;
mod stopwords;
mod urls;

pub use cloze::{ClozeItem, ClozeSet};
pub use corpus::{BiasSpec, CorpusSpec, SyntheticWorld, PROFESSIONS};
pub use pile::{scan_for_insults, InsultMatch, PileShard, INSULT_LEXICON};
pub use stopwords::{is_stop_word, stop_words};
pub use urls::UrlWorld;
