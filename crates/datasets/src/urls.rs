//! The simulated internet for the URL-memorization experiment (§4.1).
//!
//! The paper validates an extracted URL by requesting it and checking for
//! an HTTP status below 300. Our substitute is membership: a URL is
//! "valid" iff it belongs to the generated set of existing pages. The
//! memorized subset is planted in the training corpus; the rest exist but
//! were never trained on (so random URL-shaped strings the model invents
//! — the paper's "realistic-looking yet fabricated content" — fail
//! validation exactly as a 404 would).

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::Rng;

const DOMAIN_STEMS: [&str; 16] = [
    "amberfield",
    "northgate",
    "rivertown",
    "quietpine",
    "bluelark",
    "stonebridge",
    "mapleworks",
    "clearharbor",
    "goldenfern",
    "willowpark",
    "redcedar",
    "silverbay",
    "oakmarsh",
    "brightmoor",
    "greyharbor",
    "fernvalley",
];

const TLDS: [&str; 4] = ["com", "org", "net", "io"];

const PATHS: [&str; 12] = [
    "news",
    "about",
    "articles/history",
    "blog/updates",
    "research",
    "archive",
    "docs/start",
    "projects",
    "gallery",
    "events/2019",
    "library",
    "notes",
];

/// The set of URLs that "exist" — the validation oracle for §4.1.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let world = relm_datasets::UrlWorld::generate(&mut rng, 5);
/// let known = world.memorized()[0].clone();
/// assert!(world.is_valid(&known));
/// assert!(!world.is_valid("https://www.invented-by-model.zzz/x"));
/// ```
#[derive(Debug, Clone)]
pub struct UrlWorld {
    valid: BTreeSet<String>,
    memorized: Vec<String>,
}

impl UrlWorld {
    /// Generate a world with `memorized` URLs planted in the corpus plus
    /// twice as many valid-but-untrained URLs.
    pub fn generate(rng: &mut SmallRng, memorized: usize) -> Self {
        let mut valid = BTreeSet::new();
        let mut memorized_list = Vec::with_capacity(memorized);
        let make = |rng: &mut SmallRng| {
            let stem = DOMAIN_STEMS[rng.gen_range(0..DOMAIN_STEMS.len())];
            let tld = TLDS[rng.gen_range(0..TLDS.len())];
            let path = PATHS[rng.gen_range(0..PATHS.len())];
            format!("https://www.{stem}.{tld}/{path}")
        };
        while memorized_list.len() < memorized {
            let url = make(rng);
            if valid.insert(url.clone()) {
                memorized_list.push(url);
            }
        }
        let extra_target = memorized * 2;
        let mut extras = 0;
        let mut attempts = 0;
        while extras < extra_target && attempts < extra_target * 20 {
            attempts += 1;
            let url = make(rng);
            if valid.insert(url) {
                extras += 1;
            }
        }
        UrlWorld {
            valid,
            memorized: memorized_list,
        }
    }

    /// URL validity check — the stand-in for "HTTP status < 300".
    pub fn is_valid(&self, url: &str) -> bool {
        self.valid.contains(url)
    }

    /// The URLs planted (repeatedly) in the training corpus.
    pub fn memorized(&self) -> &[String] {
        &self.memorized
    }

    /// Total number of existing URLs.
    pub fn valid_count(&self) -> usize {
        self.valid.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn memorized_urls_are_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let world = UrlWorld::generate(&mut rng, 6);
        assert_eq!(world.memorized().len(), 6);
        for url in world.memorized() {
            assert!(world.is_valid(url));
        }
    }

    #[test]
    fn world_contains_untrained_valid_urls() {
        let mut rng = SmallRng::seed_from_u64(1);
        let world = UrlWorld::generate(&mut rng, 6);
        assert!(world.valid_count() > 6);
    }

    #[test]
    fn fabricated_urls_fail_validation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let world = UrlWorld::generate(&mut rng, 6);
        assert!(!world.is_valid("https://www.totally-made-up.example/void"));
        assert!(!world.is_valid(""));
    }

    #[test]
    fn urls_match_the_papers_regex_shape() {
        // Every generated URL must match the §4.1 query pattern
        // https://www.(alnum|_|-|#|%)+.(alnum|_|-|#|%|/)+ .
        let mut rng = SmallRng::seed_from_u64(2);
        let world = UrlWorld::generate(&mut rng, 8);
        for url in world.memorized() {
            assert!(url.starts_with("https://www."), "{url}");
            let rest = &url["https://www.".len()..];
            let (host, path) = rest.split_once('.').expect("has dot");
            assert!(!host.is_empty() && !path.is_empty());
            assert!(host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"_-#%".contains(&b)));
            assert!(path
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"_-#%/.".contains(&b)));
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = UrlWorld::generate(&mut SmallRng::seed_from_u64(9), 5);
        let b = UrlWorld::generate(&mut SmallRng::seed_from_u64(9), 5);
        assert_eq!(a.memorized(), b.memorized());
        assert_eq!(a.valid_count(), b.valid_count());
    }
}
