//! Embedded English stop-word list.
//!
//! §4.4's `no stop` strategy filters NLTK's stop words out of the answer
//! language. We embed the standard English list (the NLTK set minus
//! archaic forms) rather than depend on an external download.

/// The stop-word list, lowercase, sorted.
static STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// The full stop-word list (lowercase, sorted ascending).
pub fn stop_words() -> &'static [&'static str] {
    STOP_WORDS
}

/// Whether `word` is a stop word (case-insensitive).
pub fn is_stop_word(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    STOP_WORDS.binary_search(&lower.as_str()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS);
    }

    #[test]
    fn common_stop_words_detected() {
        for w in ["the", "a", "it", "that", "The", "IT"] {
            assert!(is_stop_word(w), "{w}");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["menu", "Gabriel", "portal", "drown", "compass"] {
            assert!(!is_stop_word(w), "{w}");
        }
    }
}
