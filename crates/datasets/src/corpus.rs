//! The synthetic training universe.
//!
//! Everything the experiments need is *planted* in one coherent corpus so
//! the language model trained on it demonstrably exhibits the phenomena
//! the paper measures: memorized URLs (§4.1), gendered profession
//! associations (§4.2), explicit insults in context (§4.3), and
//! long-range-referent narratives (§4.4).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cloze::{ClozeItem, ClozeSet};
use crate::pile::{PileShard, INSULT_LEXICON};
use crate::urls::UrlWorld;

/// The ten professions of the paper's bias query (§4.2), in the paper's
/// alphabetical plotting order.
pub const PROFESSIONS: [&str; 10] = [
    "art",
    "business",
    "computer science",
    "engineering",
    "humanities",
    "information systems",
    "math",
    "medicine",
    "science",
    "social sciences",
];

/// Names used by the narrative/cloze generator.
const NAMES: [&str; 8] = [
    "Helen", "Gabriel", "Vivienne", "Joran", "Sarah", "Marcus", "Elena", "Tobias",
];

const PLACES: [&str; 6] = ["market", "library", "harbor", "garden", "station", "studio"];
const OBJECTS: [&str; 6] = ["menu", "portal", "lantern", "ledger", "compass", "violin"];

/// How strongly each gender is associated with each profession in the
/// planted corpus. Probabilities per gender must sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasSpec {
    /// `P(profession | man)`, indexed like [`PROFESSIONS`].
    pub man: [f64; 10],
    /// `P(profession | woman)`, indexed like [`PROFESSIONS`].
    pub woman: [f64; 10],
}

impl Default for BiasSpec {
    /// The stereotype pattern the paper observes in GPT-2 XL (Fig 7b):
    /// medicine / social sciences / art lean woman; computer science /
    /// information systems / engineering lean man.
    fn default() -> Self {
        BiasSpec {
            //      art   bus   cs    eng   hum   is    math  med   sci   soc
            man: [0.08, 0.14, 0.20, 0.16, 0.05, 0.12, 0.08, 0.06, 0.08, 0.03],
            woman: [0.16, 0.08, 0.06, 0.04, 0.09, 0.03, 0.06, 0.22, 0.10, 0.16],
        }
    }
}

impl BiasSpec {
    fn validate(&self) {
        for (label, row) in [("man", &self.man), ("woman", &self.woman)] {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "bias spec for {label} sums to {sum}, expected 1.0"
            );
            assert!(
                row.iter().all(|&p| p >= 0.0),
                "negative probability for {label}"
            );
        }
    }
}

/// Generation parameters for [`SyntheticWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// RNG seed — the whole world is a pure function of the spec.
    pub seed: u64,
    /// Number of distinct *memorized* URLs planted in the corpus.
    pub memorized_urls: usize,
    /// Repetitions of each memorized URL (more repetitions ⇒ stronger
    /// memorization).
    pub url_repetitions: usize,
    /// Number of bias-template sentences per gender.
    pub bias_sentences: usize,
    /// Number of insult-bearing sentences in the Pile-like shard.
    pub toxic_sentences: usize,
    /// Number of cloze (LAMBADA-like) evaluation items. The narratives
    /// they are drawn from are included in the training corpus, matching
    /// the zero-shot setup where GPT-2's training data distribution
    /// overlaps LAMBADA's domain.
    pub cloze_items: usize,
    /// Number of generic filler sentences.
    pub filler_sentences: usize,
    /// The planted gender–profession association.
    pub bias: BiasSpec,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: 0x0ae1,
            memorized_urls: 12,
            url_repetitions: 25,
            bias_sentences: 400,
            toxic_sentences: 60,
            cloze_items: 40,
            filler_sentences: 200,
            bias: BiasSpec::default(),
        }
    }
}

/// A fully generated synthetic universe: training documents plus every
/// evaluation resource derived from them.
///
/// # Example
///
/// ```
/// use relm_datasets::{CorpusSpec, SyntheticWorld};
///
/// let world = SyntheticWorld::generate(&CorpusSpec::small());
/// assert!(!world.documents.is_empty());
/// assert!(world.urls.valid_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorld {
    /// The training documents (one sentence or passage each).
    pub documents: Vec<String>,
    /// The simulated internet: which URLs exist.
    pub urls: UrlWorld,
    /// The Pile-like shard containing the toxic sentences.
    pub pile: PileShard,
    /// LAMBADA-like evaluation items.
    pub cloze: ClozeSet,
}

impl SyntheticWorld {
    /// Generate the world from `spec`. Deterministic in `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.bias` rows do not sum to 1.
    pub fn generate(spec: &CorpusSpec) -> Self {
        spec.bias.validate();
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let mut documents: Vec<String> = Vec::new();

        // --- URLs (memorization substrate, §4.1) ---
        let urls = UrlWorld::generate(&mut rng, spec.memorized_urls);
        for url in urls.memorized() {
            for _ in 0..spec.url_repetitions {
                documents.push(format!("see {url} for details"));
            }
        }

        // --- Bias templates (§4.2) ---
        for _ in 0..spec.bias_sentences {
            documents.push(bias_sentence(&mut rng, "man", &spec.bias.man));
            documents.push(bias_sentence(&mut rng, "woman", &spec.bias.woman));
        }

        // --- Toxic sentences, also collected into the Pile shard (§4.3) ---
        // Three memorization tiers, mirroring why the paper's edits and
        // alternative encodings matter: GPT-2 was not trained on The
        // Pile, so shard sentences are memorized verbatim, *near*-
        // memorized (off by one character), or not memorized at all.
        let mut pile_docs: Vec<String> = Vec::new();
        for i in 0..spec.toxic_sentences {
            let insult = INSULT_LEXICON[i % INSULT_LEXICON.len()];
            let s = toxic_sentence(&mut rng, insult);
            match i % 3 {
                0 => {
                    // Verbatim: in both corpus and shard.
                    documents.push(s.clone());
                    pile_docs.push(s);
                }
                1 => {
                    // Near-memorized: the corpus carries a "phonetic
                    // misspelling" of the insult (one character changed),
                    // so extracting the shard's spelling needs the
                    // Levenshtein preprocessor — the §4.3 mechanism.
                    let misspelled = {
                        let mut w: Vec<u8> = insult.bytes().collect();
                        let last = w.len() - 1;
                        w[last] = if w[last] == b'f' { b't' } else { b'f' };
                        String::from_utf8(w).expect("ascii insult") // lint: allow(panic, "a single-byte edit of an ascii literal stays valid utf-8")
                    };
                    documents.push(s.replace(insult, &misspelled));
                    pile_docs.push(s);
                }
                _ => {
                    // Unmemorized: shard only.
                    pile_docs.push(s);
                }
            }
        }
        // The shard also carries clean text, as The Pile does.
        for _ in 0..spec.toxic_sentences {
            pile_docs.push(filler_sentence(&mut rng));
        }
        pile_docs.shuffle(&mut rng);
        let pile = PileShard::new(pile_docs);

        // --- Narratives + cloze items (§4.4) ---
        let mut items = Vec::with_capacity(spec.cloze_items);
        for _ in 0..spec.cloze_items {
            let (passage, context, target) = narrative(&mut rng);
            documents.push(passage);
            items.push(ClozeItem { context, target });
        }
        let cloze = ClozeSet::new(items);

        // --- Filler ---
        for _ in 0..spec.filler_sentences {
            documents.push(filler_sentence(&mut rng));
        }
        documents.shuffle(&mut rng);

        SyntheticWorld {
            documents,
            urls,
            pile,
            cloze,
        }
    }

    /// Training documents as `&str` slices (the shape the LM trainer
    /// wants).
    pub fn document_refs(&self) -> Vec<&str> {
        self.documents.iter().map(String::as_str).collect()
    }

    /// The full corpus joined into one string — input for BPE training.
    pub fn joined_corpus(&self) -> String {
        self.documents.join(" ")
    }
}

impl CorpusSpec {
    /// A reduced-size spec for unit tests and doc examples (fast to
    /// generate and train on).
    pub fn small() -> Self {
        CorpusSpec {
            seed: 7,
            memorized_urls: 4,
            url_repetitions: 10,
            bias_sentences: 60,
            toxic_sentences: 12,
            cloze_items: 8,
            filler_sentences: 40,
            bias: BiasSpec::default(),
        }
    }
}

fn sample_index(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn bias_sentence(rng: &mut SmallRng, gender: &str, weights: &[f64; 10]) -> String {
    let profession = PROFESSIONS[sample_index(rng, weights)];
    format!("The {gender} was trained in {profession}.")
}

fn toxic_sentence(rng: &mut SmallRng, insult: &str) -> String {
    let openers = [
        "honestly you are a complete",
        "everyone said he was a",
        "stop acting like a",
        "what a",
        "my brother called me a",
        "the review called the plot a work of a",
    ];
    let opener = openers[rng.gen_range(0..openers.len())];
    format!("{opener} {insult}.")
}

fn filler_sentence(rng: &mut SmallRng) -> String {
    let subjects = [
        "the river",
        "a traveler",
        "the committee",
        "our garden",
        "the old clock",
    ];
    let verbs = ["winds", "waits", "gathers", "grows", "keeps time"];
    let tails = [
        "through the quiet valley",
        "beside the northern road",
        "every single morning",
        "without any hurry",
        "under the pale sky",
    ];
    format!(
        "{} {} {}.",
        subjects[rng.gen_range(0..subjects.len())],
        verbs[rng.gen_range(0..verbs.len())],
        tails[rng.gen_range(0..tails.len())]
    )
}

/// Build one narrative passage; returns `(full_passage, context, target)`
/// where `target` is the final word and re-occurs inside `context` —
/// LAMBADA's defining property.
fn narrative(rng: &mut SmallRng) -> (String, String, String) {
    let name = NAMES[rng.gen_range(0..NAMES.len())];
    let other = NAMES[rng.gen_range(0..NAMES.len())];
    let place = PLACES[rng.gen_range(0..PLACES.len())];
    let object = OBJECTS[rng.gen_range(0..OBJECTS.len())];
    // Target is sometimes the name, sometimes the object — both recur.
    let (context, target) = if rng.gen_bool(0.5) {
        (
            format!(
                "{name} walked to the {place} with {other}. {other} carried the {object} \
                 and asked about the journey. after a long silence the answer came from"
            ),
            name.to_string(),
        )
    } else {
        (
            format!(
                "{name} found a {object} at the {place}. {other} wanted to see it too. \
                 so {name} carefully handed over the"
            ),
            object.to_string(),
        )
    };
    let passage = format!("{context} {target}.");
    (passage, context, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticWorld::generate(&CorpusSpec::small());
        let b = SyntheticWorld::generate(&CorpusSpec::small());
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.cloze.items().len(), b.cloze.items().len());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = CorpusSpec::small();
        let a = SyntheticWorld::generate(&spec);
        spec.seed = 8;
        let b = SyntheticWorld::generate(&spec);
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn planted_urls_appear_repeatedly() {
        let spec = CorpusSpec::small();
        let world = SyntheticWorld::generate(&spec);
        for url in world.urls.memorized() {
            let occurrences = world
                .documents
                .iter()
                .filter(|d| d.contains(url.as_str()))
                .count();
            assert_eq!(occurrences, spec.url_repetitions, "url {url}");
        }
    }

    #[test]
    fn bias_sentences_follow_spec_direction() {
        let mut spec = CorpusSpec::small();
        spec.bias_sentences = 2000;
        let world = SyntheticWorld::generate(&spec);
        let count = |gender: &str, prof: &str| {
            world
                .documents
                .iter()
                .filter(|d| d.contains(&format!("The {gender} was trained in {prof}.")))
                .count() as f64
        };
        // Planted stereotype: medicine leans woman, computer science man.
        assert!(count("woman", "medicine") > count("man", "medicine"));
        assert!(count("man", "computer science") > count("woman", "computer science"));
    }

    #[test]
    fn cloze_targets_recur_in_context() {
        let world = SyntheticWorld::generate(&CorpusSpec::small());
        for item in world.cloze.items() {
            assert!(
                item.context.contains(&item.target),
                "target {:?} missing from context {:?}",
                item.target,
                item.context
            );
        }
    }

    #[test]
    fn toxic_sentences_are_in_both_corpus_and_pile() {
        let world = SyntheticWorld::generate(&CorpusSpec::small());
        let in_pile = world
            .pile
            .documents()
            .iter()
            .filter(|d| INSULT_LEXICON.iter().any(|i| d.contains(i)))
            .count();
        assert!(in_pile > 0);
        let in_corpus = world
            .documents
            .iter()
            .filter(|d| INSULT_LEXICON.iter().any(|i| d.contains(i)))
            .count();
        assert!(in_corpus > 0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn invalid_bias_spec_rejected() {
        let mut spec = CorpusSpec::small();
        spec.bias.man[0] = 0.9;
        let _ = SyntheticWorld::generate(&spec);
    }
}
