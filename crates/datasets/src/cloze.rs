//! LAMBADA-like cloze items (§4.4).
//!
//! LAMBADA (Paperno et al., 2016) tests long-range reasoning: predict a
//! passage's final word, which humans can only guess given the *whole*
//! context (the word typically re-occurs earlier in the passage). Our
//! generated narratives preserve that property: every target appears in
//! its context, so the paper's `words` strategy (constrain the answer to
//! context words) is meaningful.

/// One cloze item: a context and the single word that completes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClozeItem {
    /// The passage up to (and excluding) the final word.
    pub context: String,
    /// The final word to predict.
    pub target: String,
}

impl ClozeItem {
    /// The distinct words of the context, lowercased where they appear —
    /// the candidate set for the `words` query strategy.
    pub fn context_words(&self) -> Vec<String> {
        let mut words: Vec<String> = self
            .context
            .split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(str::to_string)
            .collect();
        words.sort();
        words.dedup();
        words
    }
}

/// A set of cloze items.
#[derive(Debug, Clone, Default)]
pub struct ClozeSet {
    items: Vec<ClozeItem>,
}

impl ClozeSet {
    /// Wrap an item list.
    pub fn new(items: Vec<ClozeItem>) -> Self {
        ClozeSet { items }
    }

    /// The items.
    pub fn items(&self) -> &[ClozeItem] {
        &self.items
    }

    /// Take the first `n` items (the paper evaluates "the first 500
    /// samples in OpenAI's test set variant").
    pub fn take(&self, n: usize) -> &[ClozeItem] {
        &self.items[..n.min(self.items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_words_are_deduped_and_sorted() {
        let item = ClozeItem {
            context: "Helen met Helen at the market, the big market".into(),
            target: "Helen".into(),
        };
        let words = item.context_words();
        assert_eq!(words, vec!["Helen", "at", "big", "market", "met", "the"]);
    }

    #[test]
    fn target_among_context_words_for_lambada_property() {
        let item = ClozeItem {
            context: "Gabriel held the compass. he offered the".into(),
            target: "compass".into(),
        };
        assert!(item.context_words().contains(&item.target));
    }

    #[test]
    fn take_clamps_to_len() {
        let set = ClozeSet::new(vec![
            ClozeItem {
                context: "a".into(),
                target: "b".into(),
            };
            3
        ]);
        assert_eq!(set.take(2).len(), 2);
        assert_eq!(set.take(10).len(), 3);
    }
}
