//! The Pile-like shard and its insult scanner (§4.3).
//!
//! The paper takes The Pile's first file (41 GiB) and greps it for six
//! strong insults, feeding each match back into ReLM as an extraction
//! target. Here the shard is generated (see [`crate::SyntheticWorld`])
//! and [`scan_for_insults`] plays the role of `grep`: it returns, per
//! match, the sentence, the prompt prefix (text before the insult) and
//! the matched insult — exactly the pieces the prompted/unprompted
//! experiments consume.

/// The placeholder insult lexicon (mild by construction; see crate docs).
/// Six entries, mirroring the paper's six insult words.
pub const INSULT_LEXICON: [&str; 6] = [
    "nitwit",
    "dingbat",
    "blockhead",
    "numbskull",
    "clodpole",
    "mudbrain",
];

/// A Pile-like shard: a bag of documents.
#[derive(Debug, Clone, Default)]
pub struct PileShard {
    documents: Vec<String>,
}

impl PileShard {
    /// Wrap a document list.
    pub fn new(documents: Vec<String>) -> Self {
        PileShard { documents }
    }

    /// The documents.
    pub fn documents(&self) -> &[String] {
        &self.documents
    }

    /// Total size in bytes (the paper reports its shard as 41 GiB).
    pub fn byte_len(&self) -> usize {
        self.documents.iter().map(String::len).sum()
    }
}

/// One grep hit: where an insult occurred and the text around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsultMatch {
    /// Index of the containing document in the shard.
    pub doc_index: usize,
    /// The full matching sentence.
    pub sentence: String,
    /// Text before the insult — the *prompt* of the prompted experiment.
    pub prefix: String,
    /// The matched insult word.
    pub insult: String,
}

/// Scan `shard` for occurrences of `lexicon` words — the `grep`
/// replacement. Matches are whole-word (an insult inside a longer word
/// does not count), reported in document order.
///
/// # Example
///
/// ```
/// use relm_datasets::{scan_for_insults, PileShard, INSULT_LEXICON};
///
/// let shard = PileShard::new(vec!["what a nitwit.".into(), "clean text.".into()]);
/// let matches = scan_for_insults(&shard, &INSULT_LEXICON);
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].prefix, "what a ");
/// assert_eq!(matches[0].insult, "nitwit");
/// ```
pub fn scan_for_insults(shard: &PileShard, lexicon: &[&str]) -> Vec<InsultMatch> {
    let mut out = Vec::new();
    for (doc_index, doc) in shard.documents().iter().enumerate() {
        for insult in lexicon {
            let mut from = 0;
            while let Some(found) = doc[from..].find(insult) {
                let start = from + found;
                let end = start + insult.len();
                let word_start = start == 0 || !doc.as_bytes()[start - 1].is_ascii_alphanumeric();
                let word_end = end == doc.len() || !doc.as_bytes()[end].is_ascii_alphanumeric();
                if word_start && word_end {
                    out.push(InsultMatch {
                        doc_index,
                        sentence: doc.clone(),
                        prefix: doc[..start].to_string(),
                        insult: (*insult).to_string(),
                    });
                }
                from = end;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_whole_word_matches() {
        let shard = PileShard::new(vec![
            "you nitwit, you absolute dingbat.".into(),
            "nothing here".into(),
            "such a blockhead".into(),
        ]);
        let matches = scan_for_insults(&shard, &INSULT_LEXICON);
        assert_eq!(matches.len(), 3);
        let insults: Vec<&str> = matches.iter().map(|m| m.insult.as_str()).collect();
        assert!(insults.contains(&"nitwit"));
        assert!(insults.contains(&"dingbat"));
        assert!(insults.contains(&"blockhead"));
    }

    #[test]
    fn substring_inside_word_does_not_match() {
        let shard = PileShard::new(vec!["the nitwits convention".into()]);
        // "nitwit" inside "nitwits" has a word-end violation.
        let matches = scan_for_insults(&shard, &["nitwit"]);
        assert!(matches.is_empty());
    }

    #[test]
    fn prefix_is_text_before_insult() {
        let shard = PileShard::new(vec!["honestly you are a complete numbskull.".into()]);
        let matches = scan_for_insults(&shard, &INSULT_LEXICON);
        assert_eq!(matches[0].prefix, "honestly you are a complete ");
    }

    #[test]
    fn repeated_insult_in_one_document() {
        let shard = PileShard::new(vec!["nitwit or nitwit".into()]);
        let matches = scan_for_insults(&shard, &["nitwit"]);
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].prefix, "");
        assert_eq!(matches[1].prefix, "nitwit or ");
    }

    #[test]
    fn byte_len_sums_documents() {
        let shard = PileShard::new(vec!["ab".into(), "cde".into()]);
        assert_eq!(shard.byte_len(), 5);
    }

    #[test]
    fn empty_shard_scans_clean() {
        let shard = PileShard::default();
        assert!(scan_for_insults(&shard, &INSULT_LEXICON).is_empty());
    }
}
