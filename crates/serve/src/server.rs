//! [`RelmServer`]: the serving event loop.
//!
//! One thread, one loop, four phases per pass:
//!
//! 1. **accept** — adopt new non-blocking connections from the listener;
//! 2. **read** — pump every connection, decode complete frames, and
//!    **admit** each query request into the shared [`QueryDriver`]
//!    (mid-flight admission: newcomers join the rotation between ticks);
//! 3. **drive** — one [`QueryDriver::tick`]: a coalescing tick over the
//!    union of every live query's scoring frontier, one bounded step of
//!    every query, and the completion notifications for queries that
//!    finished — which become response frames on their submitters'
//!    write queues;
//! 4. **write** — flush write queues; sweep closed connections,
//!    cancelling their in-flight queries.
//!
//! When a pass does none of that, the [`Reactor`] parks the thread.
//!
//! The executor `step()`/`frontier_contexts()` protocol is exactly the
//! poll interface this loop needs: a query is a future whose `poll` is
//! one bounded unit of traversal, the driver is the executor that polls
//! every live future in rotation, and the coalescing tick is where
//! "concurrency" pays — frontiers of *different* connections' queries
//! merge into shared model batches. Because scoring is pure and
//! memoized, the interleaving can never change a result: every response
//! carries exactly the match texts and score *bits* a solo
//! `Relm::search` of the same query produces (`tests/serve.rs`).

use std::collections::HashMap;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use relm_core::{QueryId, Relm, TickQuantum};
use relm_lm::LanguageModel;

use crate::conn::Connection;
use crate::protocol::{
    error_response, Request, Response, WireMatch, WireServerStats, MAX_FRAME_BYTES,
};
use crate::reactor::{PollReactor, Reactor};

/// Tuning knobs for a [`RelmServer`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Hard cap on one frame's payload bytes.
    pub max_frame_bytes: usize,
    /// How long the reactor parks on an idle pass.
    pub park: Duration,
    /// The driver's coalescing-tick policy.
    pub tick_quantum: TickQuantum,
    /// Exit the serve loop after this many completed queries (`None` =
    /// serve until the shutdown flag flips). Scripted smoke tests and
    /// benches use it for deterministic shutdown.
    pub max_requests: Option<u64>,
    /// Warm-boot from the client's configured plan store before
    /// accepting connections: restore every compatible compiled plan
    /// into the plan memo and import the scoring-cache snapshot (if
    /// its generation and tokenizer still match). A no-op when the
    /// client has no store configured — best-effort, never fatal.
    pub preload_store: bool,
    /// Flush the shared scoring cache to the client's plan store when
    /// the serve loop exits, so the next replica boots score-warm.
    /// (Compiled plans need no flush: they are written back at compile
    /// time.) Best-effort, never fatal.
    pub flush_store: bool,
}

impl ServerConfig {
    /// The default knobs (1 MiB frames, 500µs park, adaptive ticks).
    pub fn new() -> Self {
        ServerConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            park: Duration::from_micros(500),
            tick_quantum: TickQuantum::default(),
            max_requests: None,
            preload_store: false,
            flush_store: false,
        }
    }

    /// Set the frame-size cap.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Set the idle-pass park interval.
    #[must_use]
    pub fn with_park(mut self, park: Duration) -> Self {
        self.park = park;
        self
    }

    /// Set the coalescing-tick policy.
    #[must_use]
    pub fn with_tick_quantum(mut self, quantum: TickQuantum) -> Self {
        self.tick_quantum = quantum;
        self
    }

    /// Exit after `n` completed queries (deterministic smoke shutdown).
    #[must_use]
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Warm-boot from the client's plan store before serving.
    #[must_use]
    pub fn with_preload_store(mut self, preload: bool) -> Self {
        self.preload_store = preload;
        self
    }

    /// Flush the scoring cache to the client's plan store on shutdown.
    #[must_use]
    pub fn with_flush_store(mut self, flush: bool) -> Self {
        self.flush_store = flush;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// What a serve loop did, returned when it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct ServerReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Queries admitted to the driver.
    pub admitted: u64,
    /// Queries completed and answered.
    pub completed: u64,
    /// Queries cancelled because their connection closed mid-flight.
    pub cancelled: u64,
    /// Requests rejected (bad pattern, malformed frame payload).
    pub rejected: u64,
    /// Idle passes parked by the reactor.
    pub parks: u64,
    /// Mean contexts per model batch in the shared engine.
    pub mean_batch_fill: f64,
    /// Model batches that mixed two or more queries' contexts — the
    /// cross-connection coalescing the server exists to produce.
    pub cross_query_batches: u64,
    /// Coalescing ticks run / skipped by the adaptive quantum.
    pub ticks_run: u64,
    /// See [`ServerReport::ticks_run`].
    pub ticks_skipped: u64,
    /// Compiled plans restored from the warm-artifact store at boot
    /// ([`ServerConfig::preload_store`]).
    pub plans_preloaded: u64,
    /// Scoring-cache distributions imported from the store's snapshot
    /// at boot ([`ServerConfig::preload_store`]).
    pub cache_entries_preloaded: u64,
    /// Bytes flushed to the store on shutdown
    /// ([`ServerConfig::flush_store`]).
    pub store_flush_bytes: u64,
}

/// A ReLM serving front end over one [`Relm`] client. See the module
/// docs for the loop structure.
#[derive(Debug)]
pub struct RelmServer<M> {
    client: Relm<M>,
    config: ServerConfig,
}

impl<M: LanguageModel> RelmServer<M> {
    /// A server over `client` with default knobs.
    pub fn new(client: Relm<M>) -> Self {
        RelmServer {
            client,
            config: ServerConfig::default(),
        }
    }

    /// A server with explicit knobs.
    pub fn with_config(client: Relm<M>, config: ServerConfig) -> Self {
        RelmServer { client, config }
    }

    /// The client this server executes through.
    pub fn client(&self) -> &Relm<M> {
        &self.client
    }

    /// The server's knobs.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Run the serve loop on `listener` with the default
    /// [`PollReactor`] until `shutdown` flips (or `max_requests` is
    /// reached). Blocks the calling thread; spawn it (or use
    /// [`spawn`]) to serve in the background.
    ///
    /// # Errors
    ///
    /// Listener setup failures (`set_nonblocking`) and fatal `accept`
    /// errors. Per-connection IO errors close that connection only.
    pub fn serve(
        &self,
        listener: TcpListener,
        shutdown: &AtomicBool,
    ) -> std::io::Result<ServerReport> {
        self.serve_with_reactor(listener, shutdown, &mut PollReactor::new())
    }

    /// [`Self::serve`] with a caller-provided waiting strategy.
    ///
    /// # Errors
    ///
    /// See [`Self::serve`].
    pub fn serve_with_reactor(
        &self,
        listener: TcpListener,
        shutdown: &AtomicBool,
        reactor: &mut dyn Reactor,
    ) -> std::io::Result<ServerReport> {
        listener.set_nonblocking(true)?;
        let mut report = ServerReport::default();
        // Warm boot: best-effort — a replica with a missing or corrupt
        // store must still come up cold and serve.
        if self.config.preload_store {
            report.plans_preloaded = self.client.preload_plans().unwrap_or(0) as u64;
            report.cache_entries_preloaded = self.client.load_scoring_cache().unwrap_or(0) as u64;
        }
        let mut driver = self
            .client
            .driver()
            .with_tick_quantum(self.config.tick_quantum);
        let mut conns: HashMap<u64, Connection> = HashMap::new();
        let mut next_token: u64 = 0;
        // In-flight query -> (connection token, request id to echo).
        let mut routes: HashMap<QueryId, (u64, u64)> = HashMap::new();

        loop {
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            if let Some(cap) = self.config.max_requests {
                if report.completed >= cap {
                    break;
                }
            }
            let mut progressed = false;

            // Phase 1: accept.
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(conn) = Connection::new(stream) {
                            conns.insert(next_token, conn);
                            next_token += 1;
                            report.accepted += 1;
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Phase 2: read + admit.
            for (&token, conn) in conns.iter_mut() {
                if conn.read_closed {
                    continue;
                }
                for frame in conn.pump_read(self.config.max_frame_bytes) {
                    progressed = true;
                    match Request::decode(&frame) {
                        Ok(Request::Stats) => {
                            let scoring = driver.scoring();
                            let (admitted, completed, cancelled) = driver.counts();
                            conn.queue_frame(
                                &Response::Stats(WireServerStats {
                                    accepted: report.accepted,
                                    admitted,
                                    completed,
                                    cancelled,
                                    in_flight: driver.in_flight() as u64,
                                    mean_batch_fill: scoring.mean_batch_size(),
                                    cross_query_batches: scoring.cross_query_batches,
                                })
                                .encode(),
                            );
                        }
                        Ok(Request::Query(request)) => {
                            let query = request.to_search_query();
                            match driver.admit(&query, request.max_results) {
                                Ok(id) => {
                                    routes.insert(id, (token, request.id));
                                    report.admitted += 1;
                                }
                                Err(error) => {
                                    report.rejected += 1;
                                    conn.queue_frame(&error_response(request.id, &error).encode());
                                }
                            }
                        }
                        Err(error) => {
                            report.rejected += 1;
                            conn.queue_frame(
                                &Response::Error {
                                    id: 0,
                                    message: error.to_string(),
                                }
                                .encode(),
                            );
                        }
                    }
                }
            }

            // Phase 3: drive. One rotation: coalescing tick over every
            // live frontier, one bounded step per query, completions out.
            if !driver.is_idle() {
                progressed = true;
                for completion in driver.tick() {
                    let Some((token, request_id)) = routes.remove(&completion.id) else {
                        continue;
                    };
                    report.completed += 1;
                    if let Some(conn) = conns.get_mut(&token) {
                        if !conn.write_dead {
                            let matches = completion
                                .outcome
                                .matches
                                .iter()
                                .map(|m| WireMatch {
                                    text: m.text.clone(),
                                    score_bits: m.log_prob.to_bits(),
                                    canonical: m.canonical,
                                    num_tokens: m.tokens.len(),
                                })
                                .collect();
                            conn.queue_frame(
                                &Response::Matches {
                                    id: request_id,
                                    matches,
                                }
                                .encode(),
                            );
                        }
                    }
                }
            }

            // Phase 4: write; cancel the in-flight queries of
            // connections whose read side closed (the protocol
            // contract: a peer that stops reading requests-in abandons
            // its outstanding queries, so one disappearing auditor
            // cannot pin server work forever — responses already queued
            // still drain); sweep connections once defunct.
            for conn in conns.values_mut() {
                if !conn.write_dead && conn.wants_write() {
                    progressed |= conn.pump_write();
                }
            }
            for (&token, conn) in conns.iter() {
                if !conn.read_closed {
                    continue;
                }
                // `routes.remove` makes this idempotent across passes.
                let orphaned: Vec<QueryId> = routes
                    .iter()
                    .filter(|(_, &(t, _))| t == token)
                    .map(|(&id, _)| id)
                    .collect();
                for id in orphaned {
                    routes.remove(&id);
                    if driver.cancel(id) {
                        report.cancelled += 1;
                        progressed = true;
                    }
                }
            }
            let before = conns.len();
            conns.retain(|_, conn| !conn.defunct());
            progressed |= conns.len() < before;

            if !progressed {
                reactor.park(self.config.park);
            }
        }

        // Final drain: the loop can exit (shutdown flag, request cap)
        // with response frames still queued — a pipelined client that
        // was slow to read would otherwise lose answers the server
        // counted as completed. Bounded: flush until every queue is
        // empty or dead, or the deadline passes.
        let drain_deadline = std::time::Instant::now() + Duration::from_millis(250);
        while conns
            .values()
            .any(|conn| !conn.write_dead && conn.wants_write())
        {
            let mut progressed = false;
            for conn in conns.values_mut() {
                if !conn.write_dead && conn.wants_write() {
                    progressed |= conn.pump_write();
                }
            }
            if std::time::Instant::now() >= drain_deadline {
                break;
            }
            if !progressed {
                reactor.park(self.config.park);
            }
        }

        let scoring = driver.scoring();
        report.mean_batch_fill = scoring.mean_batch_size();
        report.cross_query_batches = scoring.cross_query_batches;
        let (ticks_run, ticks_skipped) = driver.tick_counts();
        report.ticks_run = ticks_run;
        report.ticks_skipped = ticks_skipped;
        report.parks = reactor.parks();
        if self.config.flush_store {
            // Plans were written back at compile time, but a re-persist
            // captures the walk tables and shard indexes materialized
            // since; the cache snapshot makes the next boot score-warm.
            report.store_flush_bytes = self.client.persist_plans().unwrap_or(0)
                + self.client.save_scoring_cache().unwrap_or(0);
        }
        Ok(report)
    }
}

/// A running background server: its address plus the handle to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Flip the shutdown flag and join the serve thread.
    ///
    /// # Errors
    ///
    /// The serve loop's IO error, if it exited with one.
    ///
    /// # Panics
    ///
    /// If the serve thread itself panicked.
    pub fn stop(self) -> std::io::Result<ServerReport> {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join.join().expect("serve thread panicked")
    }
}

/// Bind `addr` and serve `server` on a background thread. The common
/// test/bench entry: `spawn(server, "127.0.0.1:0")` picks a free port,
/// [`ServerHandle::addr`] says which.
///
/// # Errors
///
/// Bind failures.
pub fn spawn<M: LanguageModel + 'static>(
    server: RelmServer<M>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let join = std::thread::spawn(move || server.serve(listener, &flag));
    Ok(ServerHandle {
        addr,
        shutdown,
        join,
    })
}
