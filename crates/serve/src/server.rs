//! [`RelmServer`]: the sharded serving event loop.
//!
//! One **acceptor** plus N **shards**. The acceptor owns the listener
//! and assigns each accepted connection to a shard (connection
//! affinity: a connection's whole pipelined query stream lives on one
//! shard for its lifetime). Each shard runs the four-phase event loop
//! on its own thread:
//!
//! 1. **adopt** — take the connections the acceptor routed here;
//! 2. **read** — pump every connection, decode complete frames, and
//!    **admit** each query request into the shard's [`QueryDriver`]
//!    (mid-flight admission: newcomers join the rotation between
//!    ticks). Admission is where backpressure bites: a connection over
//!    its in-flight quota, or a server at its global in-flight cap,
//!    gets a typed [`Response::Busy`] frame instead of unbounded queue
//!    growth;
//! 3. **drive** — one [`QueryDriver::tick`]: a coalescing tick over the
//!    union of the shard's live scoring frontiers, one bounded step of
//!    every query, and the completion notifications for queries that
//!    finished — which become response frames on their submitters'
//!    write queues (deadline-expired queries become
//!    [`Response::DeadlineExceeded`] frames);
//! 4. **write** — flush write queues; sweep closed connections,
//!    cancelling their in-flight queries.
//!
//! When a pass does none of that, the shard's [`Reactor`] parks it.
//!
//! Shards parallelize *driving*; warmth stays global. Every shard's
//! driver executes through the same [`Relm`] client, so the plan memo,
//! the shared scoring cache, the plan store, and the worker pool are
//! one instance behind all N loops — a plan compiled (or a score
//! memoized) on one shard is warm on every other.
//!
//! Why per-connection determinism survives N shards: scoring is pure
//! and memoized, so neither which shard drives a query, nor which other
//! queries share its coalesced batches, nor what the cache already
//! holds can change any traversal decision — every response carries
//! exactly the match texts and score *bits* a solo `Relm::search` of
//! the same query produces (`tests/serve.rs`, `tests/serve_sharded.rs`).

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use relm_core::{PlanSource, QueryId, Relm, TickQuantum};
use relm_lm::LanguageModel;

use crate::conn::Connection;
use crate::protocol::{
    error_response, Request, Response, WireMatch, WireServerStats, MAX_FRAME_BYTES,
};
use crate::reactor::{PollReactor, Reactor};

/// Tuning knobs for a [`RelmServer`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Hard cap on one frame's payload bytes.
    pub max_frame_bytes: usize,
    /// How long the reactor parks on an idle pass.
    pub park: Duration,
    /// The driver's coalescing-tick policy.
    pub tick_quantum: TickQuantum,
    /// Exit the serve loop after this many completed queries (`None` =
    /// serve until the shutdown flag flips). Scripted smoke tests and
    /// benches use it for deterministic shutdown.
    pub max_requests: Option<u64>,
    /// Warm-boot from the client's configured plan store before
    /// accepting connections: restore every compatible compiled plan
    /// into the plan memo and import the scoring-cache snapshot (if
    /// its generation and tokenizer still match). A no-op when the
    /// client has no store configured — best-effort, never fatal.
    pub preload_store: bool,
    /// Flush the shared scoring cache to the client's plan store when
    /// the serve loop exits, so the next replica boots score-warm.
    /// (Compiled plans need no flush: they are written back at compile
    /// time.) Best-effort, never fatal.
    pub flush_store: bool,
    /// Driver shards: independent event loops, each with its own
    /// reactor, connection table, and [`QueryDriver`]. Connections get
    /// shard affinity at accept time. Clamped to at least 1.
    pub shards: usize,
    /// Global cap on queries in flight across all shards; admissions
    /// beyond it answer [`Response::Busy`].
    pub max_inflight: usize,
    /// Per-connection cap on queries in flight; a connection pipelining
    /// past it answers [`Response::Busy`] (its admitted queries are
    /// unaffected).
    pub max_inflight_per_conn: usize,
}

impl ServerConfig {
    /// The default knobs (1 MiB frames, 500µs park, adaptive ticks,
    /// one shard, 1024 in flight globally / 64 per connection).
    pub fn new() -> Self {
        ServerConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            park: Duration::from_micros(500),
            tick_quantum: TickQuantum::default(),
            max_requests: None,
            preload_store: false,
            flush_store: false,
            shards: 1,
            max_inflight: 1024,
            max_inflight_per_conn: 64,
        }
    }

    /// Set the frame-size cap.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Set the idle-pass park interval.
    #[must_use]
    pub fn with_park(mut self, park: Duration) -> Self {
        self.park = park;
        self
    }

    /// Set the coalescing-tick policy.
    #[must_use]
    pub fn with_tick_quantum(mut self, quantum: TickQuantum) -> Self {
        self.tick_quantum = quantum;
        self
    }

    /// Exit after `n` completed queries (deterministic smoke shutdown).
    #[must_use]
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Warm-boot from the client's plan store before serving.
    #[must_use]
    pub fn with_preload_store(mut self, preload: bool) -> Self {
        self.preload_store = preload;
        self
    }

    /// Flush the scoring cache to the client's plan store on shutdown.
    #[must_use]
    pub fn with_flush_store(mut self, flush: bool) -> Self {
        self.flush_store = flush;
        self
    }

    /// Set the driver-shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the global in-flight query cap.
    #[must_use]
    pub fn with_max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap;
        self
    }

    /// Set the per-connection in-flight query quota.
    #[must_use]
    pub fn with_max_inflight_per_conn(mut self, quota: usize) -> Self {
        self.max_inflight_per_conn = quota;
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// One shard's slice of the work, inside [`ServerReport::shards`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct ShardReport {
    /// This shard's index (0-based).
    pub shard: usize,
    /// Connections the acceptor assigned here.
    pub connections: u64,
    /// Queries admitted to this shard's driver.
    pub admitted: u64,
    /// Queries completed and answered.
    pub completed: u64,
    /// Queries cancelled because their connection closed mid-flight.
    pub cancelled: u64,
    /// Queries stopped because their deadline elapsed.
    pub expired: u64,
    /// Requests rejected (bad pattern, malformed frame payload).
    pub rejected: u64,
    /// Admissions refused by backpressure (per-connection quota or
    /// global in-flight cap).
    pub busy_rejections: u64,
    /// Plans this shard's admissions restored from the warm-artifact
    /// store (memo misses answered by disk instead of compilation).
    pub store_hits: u64,
    /// Idle passes parked by this shard's reactor.
    pub parks: u64,
    /// Mean contexts per model batch in this shard's engine.
    pub mean_batch_fill: f64,
    /// This shard's model batches that mixed two or more queries'
    /// contexts.
    pub cross_query_batches: u64,
    /// Model batches this shard's engine issued (the denominator of
    /// [`ShardReport::mean_batch_fill`]).
    pub batches: u64,
    /// Contexts across those batches (the numerator).
    pub batched_contexts: u64,
    /// Coalescing ticks run / skipped by the adaptive quantum.
    pub ticks_run: u64,
    /// See [`ShardReport::ticks_run`].
    pub ticks_skipped: u64,
}

/// What a serve loop did, returned when it exits: server-wide totals
/// plus one [`ShardReport`] per shard.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct ServerReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Queries admitted across all shards.
    pub admitted: u64,
    /// Queries completed and answered.
    pub completed: u64,
    /// Queries cancelled because their connection closed mid-flight.
    pub cancelled: u64,
    /// Queries stopped because their deadline elapsed.
    pub expired: u64,
    /// Requests rejected (bad pattern, malformed frame payload).
    pub rejected: u64,
    /// Admissions refused by backpressure (per-connection quota or
    /// global in-flight cap).
    pub busy_rejections: u64,
    /// Plan-store hits attributed to admissions (across shards).
    pub store_hits: u64,
    /// Idle passes parked (acceptor + every shard reactor).
    pub parks: u64,
    /// Mean contexts per model batch, weighted across shard engines.
    pub mean_batch_fill: f64,
    /// Model batches that mixed two or more queries' contexts — the
    /// cross-connection coalescing the server exists to produce.
    pub cross_query_batches: u64,
    /// Coalescing ticks run / skipped by the adaptive quantum (summed).
    pub ticks_run: u64,
    /// See [`ServerReport::ticks_run`].
    pub ticks_skipped: u64,
    /// Compiled plans restored from the warm-artifact store at boot
    /// ([`ServerConfig::preload_store`]).
    pub plans_preloaded: u64,
    /// Scoring-cache distributions imported from the store's snapshot
    /// at boot ([`ServerConfig::preload_store`]).
    pub cache_entries_preloaded: u64,
    /// Bytes flushed to the store on shutdown
    /// ([`ServerConfig::flush_store`]).
    pub store_flush_bytes: u64,
    /// Per-shard sections, indexed by shard id.
    pub shards: Vec<ShardReport>,
}

/// Counters every shard (and the acceptor) shares. Relaxed ordering
/// throughout: these are monotone gauges and tallies, never used to
/// publish data between threads.
#[derive(Default)]
struct SharedCounters {
    accepted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    busy_rejections: AtomicU64,
    /// Queries in flight across all shards — the global-cap gauge.
    in_flight: AtomicUsize,
    /// The acceptor's stop signal to the shards (shutdown flag flipped,
    /// request cap reached, or a fatal listener error).
    stop: AtomicBool,
}

/// Reserve one slot of the global in-flight budget, failing (without
/// any change) when the cap is already met.
fn try_reserve(gauge: &AtomicUsize, cap: usize) -> bool {
    gauge
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_ok()
}

/// A ReLM serving front end over one [`Relm`] client. See the module
/// docs for the loop structure.
#[derive(Debug)]
pub struct RelmServer<M> {
    client: Relm<M>,
    config: ServerConfig,
}

impl<M: LanguageModel> RelmServer<M> {
    /// A server over `client` with default knobs.
    pub fn new(client: Relm<M>) -> Self {
        RelmServer {
            client,
            config: ServerConfig::default(),
        }
    }

    /// A server with explicit knobs.
    pub fn with_config(client: Relm<M>, config: ServerConfig) -> Self {
        RelmServer { client, config }
    }

    /// The client this server executes through.
    pub fn client(&self) -> &Relm<M> {
        &self.client
    }

    /// The server's knobs.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Run the server on `listener` until `shutdown` flips (or
    /// `max_requests` is reached): the calling thread becomes the
    /// acceptor, and [`ServerConfig::shards`] shard loops run on scoped
    /// threads. Blocks the calling thread; spawn it (or use [`spawn`])
    /// to serve in the background.
    ///
    /// # Errors
    ///
    /// Listener setup failures (`set_nonblocking`) and fatal `accept`
    /// errors. Per-connection IO errors close that connection only.
    pub fn serve(
        &self,
        listener: TcpListener,
        shutdown: &AtomicBool,
    ) -> std::io::Result<ServerReport> {
        listener.set_nonblocking(true)?;
        let mut report = ServerReport::default();
        // Warm boot once, before any shard runs: best-effort — a
        // replica with a missing or corrupt store must still come up
        // cold and serve.
        if self.config.preload_store {
            report.plans_preloaded = self.client.preload_plans().unwrap_or(0) as u64;
            report.cache_entries_preloaded = self.client.load_scoring_cache().unwrap_or(0) as u64;
        }

        let shard_count = self.config.shards.max(1);
        let shared = SharedCounters::default();
        // One mailbox per shard: the acceptor pushes `(token, stream)`,
        // the shard loop adopts. A Mutex'd Vec, not a channel — both
        // sides are non-blocking and the critical section is a push or
        // a take.
        let inboxes: Vec<Mutex<Vec<(u64, TcpStream)>>> =
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();

        let mut acceptor_parks = 0u64;
        let shard_reports = std::thread::scope(|scope| -> std::io::Result<Vec<ShardReport>> {
            let shared = &shared;
            let handles: Vec<_> = (0..shard_count)
                .map(|shard| {
                    let inbox = &inboxes[shard];
                    scope.spawn(move || self.shard_loop(shard, shard_count, inbox, shared))
                })
                .collect();

            // The acceptor loop. Its only jobs: accept, assign a shard
            // (round-robin over the connection token — deterministic
            // affinity), and watch the exit conditions.
            let accept_result: std::io::Result<()> = 'accept: loop {
                if shutdown.load(Ordering::Relaxed) {
                    break Ok(());
                }
                if let Some(cap) = self.config.max_requests {
                    if shared.completed.load(Ordering::Relaxed) >= cap {
                        break Ok(());
                    }
                }
                let mut progressed = false;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let token = shared.accepted.fetch_add(1, Ordering::Relaxed);
                            let shard = (token % shard_count as u64) as usize;
                            if let Ok(mut inbox) = inboxes[shard].lock() {
                                inbox.push((token, stream));
                            }
                            progressed = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => break 'accept Err(e),
                    }
                }
                if !progressed {
                    std::thread::sleep(self.config.park);
                    acceptor_parks += 1;
                }
            };

            shared.stop.store(true, Ordering::Relaxed);
            let mut reports = Vec::with_capacity(shard_count);
            for handle in handles {
                let report = handle
                    .join()
                    .map_err(|_| std::io::Error::other("shard thread panicked"))?;
                reports.push(report);
            }
            accept_result.map(|()| reports)
        })?;

        report.accepted = shared.accepted.load(Ordering::Relaxed);
        report.admitted = shared.admitted.load(Ordering::Relaxed);
        report.completed = shared.completed.load(Ordering::Relaxed);
        report.cancelled = shared.cancelled.load(Ordering::Relaxed);
        report.expired = shared.expired.load(Ordering::Relaxed);
        report.busy_rejections = shared.busy_rejections.load(Ordering::Relaxed);
        report.parks = acceptor_parks;
        let (mut batches, mut contexts) = (0u64, 0u64);
        for shard in &shard_reports {
            report.rejected += shard.rejected;
            report.store_hits += shard.store_hits;
            report.parks += shard.parks;
            report.cross_query_batches += shard.cross_query_batches;
            report.ticks_run += shard.ticks_run;
            report.ticks_skipped += shard.ticks_skipped;
            batches += shard.batches;
            contexts += shard.batched_contexts;
        }
        // Batch fill weighted by batches, not a mean of shard means —
        // a near-idle shard's handful of batches must not dilute it.
        report.mean_batch_fill = if batches == 0 {
            0.0
        } else {
            contexts as f64 / batches as f64
        };
        report.shards = shard_reports;
        if self.config.flush_store {
            // Plans were written back at compile time, but a re-persist
            // captures the walk tables and shard indexes materialized
            // since; the cache snapshot makes the next boot score-warm.
            report.store_flush_bytes = self.client.persist_plans().unwrap_or(0)
                + self.client.save_scoring_cache().unwrap_or(0);
        }
        Ok(report)
    }

    /// One shard: the four-phase event loop over the connections the
    /// acceptor assigned here, with its own reactor and driver. Runs
    /// until the shared stop flag flips, then drains queued responses.
    fn shard_loop(
        &self,
        shard: usize,
        shard_count: usize,
        inbox: &Mutex<Vec<(u64, TcpStream)>>,
        shared: &SharedCounters,
    ) -> ShardReport {
        let mut reactor = PollReactor::new();
        let mut driver = self
            .client
            .driver()
            .with_tick_quantum(self.config.tick_quantum);
        let mut conns: HashMap<u64, Connection> = HashMap::new();
        // In-flight query -> (connection token, request id to echo).
        let mut routes: HashMap<QueryId, (u64, u64)> = HashMap::new();
        let mut report = ShardReport {
            shard,
            ..ShardReport::default()
        };

        loop {
            if shared.stop.load(Ordering::Relaxed) {
                break;
            }
            let mut progressed = false;

            // Phase 1: adopt newly assigned connections.
            let adopted: Vec<(u64, TcpStream)> = match inbox.lock() {
                Ok(mut inbox) => std::mem::take(&mut *inbox),
                Err(_) => Vec::new(),
            };
            for (token, stream) in adopted {
                if let Ok(conn) = Connection::new(stream) {
                    conns.insert(token, conn);
                    report.connections += 1;
                    progressed = true;
                }
            }

            // Phase 2: read + admit (quotas first — rejecting is
            // cheaper than planning).
            for (&token, conn) in conns.iter_mut() {
                if conn.read_closed {
                    continue;
                }
                for frame in conn.pump_read(self.config.max_frame_bytes) {
                    progressed = true;
                    match Request::decode(&frame) {
                        Ok(Request::Stats) => {
                            let scoring = driver.scoring();
                            conn.queue_frame(
                                &Response::Stats(WireServerStats {
                                    accepted: shared.accepted.load(Ordering::Relaxed),
                                    admitted: shared.admitted.load(Ordering::Relaxed),
                                    completed: shared.completed.load(Ordering::Relaxed),
                                    cancelled: shared.cancelled.load(Ordering::Relaxed),
                                    expired: shared.expired.load(Ordering::Relaxed),
                                    busy_rejections: shared.busy_rejections.load(Ordering::Relaxed),
                                    in_flight: shared.in_flight.load(Ordering::Relaxed) as u64,
                                    mean_batch_fill: scoring.mean_batch_size(),
                                    cross_query_batches: scoring.cross_query_batches,
                                    shard: shard as u64,
                                    shards: shard_count as u64,
                                })
                                .encode(),
                            );
                        }
                        Ok(Request::Query(request)) => {
                            if conn.inflight >= self.config.max_inflight_per_conn {
                                report.busy_rejections += 1;
                                shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                                conn.queue_frame(
                                    &Response::Busy {
                                        id: request.id,
                                        message: format!(
                                            "connection quota: {} queries already in flight",
                                            conn.inflight
                                        ),
                                    }
                                    .encode(),
                                );
                                continue;
                            }
                            if !try_reserve(&shared.in_flight, self.config.max_inflight) {
                                report.busy_rejections += 1;
                                shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                                conn.queue_frame(
                                    &Response::Busy {
                                        id: request.id,
                                        message: format!(
                                            "server at capacity: {} queries in flight",
                                            self.config.max_inflight
                                        ),
                                    }
                                    .encode(),
                                );
                                continue;
                            }
                            let deadline = request
                                .deadline_ms
                                .map(|ms| Instant::now() + Duration::from_millis(ms));
                            let query = request.to_search_query();
                            let admitted = self.client.session().plan_traced(&query).and_then(
                                |(plan, source)| {
                                    if source == PlanSource::Store {
                                        report.store_hits += 1;
                                    }
                                    driver.admit_plan_with_deadline(
                                        &plan,
                                        request.max_results,
                                        deadline,
                                    )
                                },
                            );
                            match admitted {
                                Ok(id) => {
                                    routes.insert(id, (token, request.id));
                                    conn.inflight += 1;
                                    report.admitted += 1;
                                    shared.admitted.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(error) => {
                                    // Release the reserved global slot.
                                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                                    report.rejected += 1;
                                    conn.queue_frame(&error_response(request.id, &error).encode());
                                }
                            }
                        }
                        Err(error) => {
                            report.rejected += 1;
                            conn.queue_frame(
                                &Response::Error {
                                    id: 0,
                                    message: error.to_string(),
                                }
                                .encode(),
                            );
                        }
                    }
                }
            }

            // Phase 3: drive. One rotation: coalescing tick over every
            // live frontier, one bounded step per query, completions out.
            if !driver.is_idle() {
                progressed = true;
                for completion in driver.tick() {
                    let Some((token, request_id)) = routes.remove(&completion.id) else {
                        continue;
                    };
                    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    if completion.expired {
                        report.expired += 1;
                        shared.expired.fetch_add(1, Ordering::Relaxed);
                    } else {
                        report.completed += 1;
                        shared.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(conn) = conns.get_mut(&token) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        if conn.write_dead {
                            continue;
                        }
                        if completion.expired {
                            conn.queue_frame(
                                &Response::DeadlineExceeded { id: request_id }.encode(),
                            );
                            continue;
                        }
                        let matches = completion
                            .outcome
                            .matches
                            .iter()
                            .map(|m| WireMatch {
                                text: m.text.clone(),
                                score_bits: m.log_prob.to_bits(),
                                canonical: m.canonical,
                                num_tokens: m.tokens.len(),
                            })
                            .collect();
                        conn.queue_frame(
                            &Response::Matches {
                                id: request_id,
                                matches,
                            }
                            .encode(),
                        );
                    }
                }
            }

            // Phase 4: write; cancel the in-flight queries of
            // connections whose read side closed (the protocol
            // contract: a peer that stops reading requests-in abandons
            // its outstanding queries, so one disappearing auditor
            // cannot pin server work forever — responses already queued
            // still drain); sweep connections once defunct.
            for conn in conns.values_mut() {
                if !conn.write_dead && conn.wants_write() {
                    progressed |= conn.pump_write();
                }
            }
            for (&token, conn) in conns.iter() {
                if !conn.read_closed {
                    continue;
                }
                // `routes.remove` makes this idempotent across passes.
                let orphaned: Vec<QueryId> = routes
                    .iter()
                    .filter(|(_, &(t, _))| t == token)
                    .map(|(&id, _)| id)
                    .collect();
                for id in orphaned {
                    routes.remove(&id);
                    if driver.cancel(id) {
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                        report.cancelled += 1;
                        shared.cancelled.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
            }
            let before = conns.len();
            conns.retain(|_, conn| !conn.defunct());
            progressed |= conns.len() < before;

            if !progressed {
                reactor.park(self.config.park);
            }
        }

        // Final drain: the loop can exit (shutdown flag, request cap)
        // with response frames still queued — a pipelined client that
        // was slow to read would otherwise lose answers the server
        // counted as completed. Bounded: flush until every queue is
        // empty or dead, or the deadline passes.
        let drain_deadline = Instant::now() + Duration::from_millis(250);
        while conns
            .values()
            .any(|conn| !conn.write_dead && conn.wants_write())
        {
            let mut progressed = false;
            for conn in conns.values_mut() {
                if !conn.write_dead && conn.wants_write() {
                    progressed |= conn.pump_write();
                }
            }
            if Instant::now() >= drain_deadline {
                break;
            }
            if !progressed {
                reactor.park(self.config.park);
            }
        }

        let scoring = driver.scoring();
        report.mean_batch_fill = scoring.mean_batch_size();
        report.cross_query_batches = scoring.cross_query_batches;
        report.batches = scoring.batches;
        report.batched_contexts = scoring.batched_contexts;
        let (ticks_run, ticks_skipped) = driver.tick_counts();
        report.ticks_run = ticks_run;
        report.ticks_skipped = ticks_skipped;
        report.parks = reactor.parks();
        report
    }
}

/// A running background server: its address plus the handle to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Flip the shutdown flag and join the serve thread.
    ///
    /// # Errors
    ///
    /// The serve loop's IO error, if it exited with one — or a synthetic
    /// one if the serve thread itself panicked.
    pub fn stop(self) -> std::io::Result<ServerReport> {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join
            .join()
            .map_err(|_| std::io::Error::other("serve thread panicked"))?
    }
}

/// Bind `addr` and serve `server` on a background thread. The common
/// test/bench entry: `spawn(server, "127.0.0.1:0")` picks a free port,
/// [`ServerHandle::addr`] says which.
///
/// # Errors
///
/// Bind failures.
pub fn spawn<M: LanguageModel + 'static>(
    server: RelmServer<M>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let join = std::thread::spawn(move || server.serve(listener, &flag));
    Ok(ServerHandle {
        addr,
        shutdown,
        join,
    })
}
