//! The waiting strategy of the serving event loop.
//!
//! The event loop drives non-blocking sockets: every pass it tries to
//! accept, read, tick the query driver, and write. When a whole pass
//! makes no progress the loop must *wait* — and how it waits is the one
//! part of an async runtime that is genuinely platform-specific. That
//! decision lives behind [`Reactor`], so the rest of the serving layer
//! is written once:
//!
//! * [`PollReactor`] (the default) is **readiness-by-retry**: it parks
//!   the thread for a short bounded interval and lets the next pass
//!   retry every socket. With no `unsafe` allowed in this workspace and
//!   no crates.io access, true `epoll`/`kqueue` registration is out of
//!   reach — but the interface is shaped exactly like one: a real epoll
//!   reactor would implement [`Reactor::park`] as `epoll_wait` and slot
//!   in without touching the loop.
//!
//! The latency cost of polling is bounded by the park interval (default
//! 500µs) and only paid on *idle* passes; under load the loop never
//! parks, so throughput is unaffected.

use std::time::Duration;

/// How the serving event loop blocks when a full pass over listener,
/// connections, and driver made no progress. See the module docs.
pub trait Reactor {
    /// Block until new IO may be ready, or `hint` elapses — called only
    /// on idle passes. Implementations may return early (spurious
    /// wakeups are harmless; the loop just polls again).
    fn park(&mut self, hint: Duration);

    /// Diagnostic name (surfaces in server logs).
    fn name(&self) -> &'static str;

    /// Idle passes parked so far (a busy-wait health gauge: a saturated
    /// server parks rarely; an idle one parks every pass).
    fn parks(&self) -> u64;
}

/// The readiness-by-retry reactor: parks the thread for the hinted
/// interval on idle passes. Platform-free, `unsafe`-free, and the
/// stand-in an epoll implementation would replace.
#[derive(Debug, Default)]
pub struct PollReactor {
    parks: u64,
}

impl PollReactor {
    /// A fresh reactor.
    pub fn new() -> Self {
        PollReactor::default()
    }
}

impl Reactor for PollReactor {
    fn park(&mut self, hint: Duration) {
        self.parks += 1;
        std::thread::sleep(hint);
    }

    fn name(&self) -> &'static str {
        "poll"
    }

    fn parks(&self) -> u64 {
        self.parks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_reactor_parks_and_counts() {
        let mut reactor = PollReactor::new();
        assert_eq!(reactor.parks(), 0);
        let start = std::time::Instant::now();
        reactor.park(Duration::from_millis(1));
        assert!(start.elapsed() >= Duration::from_millis(1));
        assert_eq!(reactor.parks(), 1);
        assert_eq!(reactor.name(), "poll");
    }
}
