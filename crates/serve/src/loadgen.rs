//! Open-loop load generation against a live ReLM server.
//!
//! **Open loop** means arrivals are scheduled by the trace clock, not
//! by completions: a slow server does not slow the offered load down,
//! it grows the queue — which is exactly how tail latency is produced
//! in real serving, and what closed-loop harnesses (request → wait →
//! request) structurally cannot measure. The generator precomputes a
//! deterministic, seeded trace of query arrivals with **heavy-tailed**
//! (bounded-Pareto) inter-arrival gaps — calm stretches punctuated by
//! bursts — assigns each arrival to one of many scripted clients, and
//! replays the trace against a live server over real sockets, with
//! pipelining (a client fires every due request immediately, reading
//! answers whenever they come), optional **disconnect storms** (every
//! Nth client vanishes with queries in flight, exercising the server's
//! cancel path), and optional **hostile frames** (every Nth client
//! opens with garbage, exercising the reject-without-killing path).
//!
//! Latency is measured from the arrival's *scheduled* instant to the
//! response — so local dispatch backlog counts against the server, as
//! an open-loop harness requires. The [`LoadReport`] carries p50 /
//! p99 / p99.9 / max and achieved QPS.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::conn::Connection;
use crate::protocol::{QueryRequest, Request, Response, StrategySpec, MAX_FRAME_BYTES};

/// The default query mix: the same demo patterns `relm_store compile`
/// seeds (so a store-backed server serves this trace warm), one per
/// executor — shortest-path, beam, and sampling.
fn default_patterns() -> Vec<(String, StrategySpec)> {
    vec![
        ("the ((cat)|(dog)) sat".into(), StrategySpec::Shortest),
        ("the cow ate".into(), StrategySpec::Beam { width: 8 }),
        (
            "the ((cat)|(cow)) ((sat)|(ate))".into(),
            StrategySpec::Sampling { seed: 0 },
        ),
    ]
}

/// Knobs of one load run. Everything is deterministic given `seed` —
/// the trace, the client assignment, the storm/hostile designations —
/// so a run is reproducible end to end (server-side timing aside).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Scripted clients (connections). Clients connect lazily at their
    /// first arrival and close when their script is done, so the
    /// concurrent-socket footprint stays bounded even with thousands.
    pub clients: usize,
    /// Total query arrivals across all clients.
    pub arrivals: usize,
    /// Mean inter-arrival gap in microseconds (the offered-load knob:
    /// offered QPS ≈ 1e6 / `mean_interarrival_us`).
    pub mean_interarrival_us: f64,
    /// Pareto shape of the inter-arrival distribution; smaller =
    /// heavier tail (burstier). Clamped to ≥ 1.05. Gaps are capped at
    /// 50× the mean so one draw cannot stall the whole trace.
    pub tail_alpha: f64,
    /// Seed of the whole trace.
    pub seed: u64,
    /// `max_results` per query.
    pub take: usize,
    /// Attach this `deadline_ms` to every query (None = no deadlines).
    pub deadline_ms: Option<u64>,
    /// Every Nth client is *doomed*: it pipelines its queries, then
    /// drops the connection without reading the answers — a disconnect
    /// storm the server must absorb as cancels. 0 disables.
    pub disconnect_every: usize,
    /// Every Nth client is *hostile*: its first frame is garbage. The
    /// server must answer a typed error and keep the connection
    /// serviceable. 0 disables.
    pub hostile_every: usize,
    /// The query mix, rotated across arrivals. Sampling entries get a
    /// fresh seed per arrival (derived from `seed`).
    pub patterns: Vec<(String, StrategySpec)>,
    /// Hard wall-clock bound on the run; whatever completed by then is
    /// reported. Guards CI against a wedged server.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            arrivals: 64,
            mean_interarrival_us: 2_000.0,
            tail_alpha: 1.3,
            seed: 7,
            take: 2,
            deadline_ms: None,
            disconnect_every: 0,
            hostile_every: 0,
            patterns: default_patterns(),
            timeout: Duration::from_secs(60),
        }
    }
}

/// What an open-loop run observed.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct LoadReport {
    /// Query frames sent (doomed clients' included).
    pub sent: u64,
    /// Queries answered with matches.
    pub completed: u64,
    /// Queries refused with a typed busy frame (backpressure).
    pub busy: u64,
    /// Queries answered `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Queries answered with a generic error frame.
    pub errors: u64,
    /// Doomed clients' queries abandoned by the disconnect storm (the
    /// server cancels these; no response is awaited).
    pub abandoned: u64,
    /// Disconnect-storm drops performed.
    pub disconnects: u64,
    /// Hostile (garbage) frames sent.
    pub hostile_frames: u64,
    /// Server rejections observed for hostile frames (error frames
    /// whose id matches no sent query).
    pub hostile_rejects: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Completed responses per second of wall clock (matches + typed
    /// refusals all count: the server answered).
    pub achieved_qps: f64,
    /// Median scheduled-arrival→response latency, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One bounded-Pareto inter-arrival gap in µs: heavy-tailed with mean
/// ≈ `mean_us`, capped at 50× the mean.
fn pareto_gap_us(rng: &mut Rng, mean_us: f64, alpha: f64) -> u64 {
    let alpha = alpha.max(1.05);
    // Pareto mean = alpha * xm / (alpha - 1); solve xm for our mean.
    let xm = mean_us * (alpha - 1.0) / alpha;
    let u = (1.0 - rng.next_f64()).max(1e-12);
    (xm / u.powf(1.0 / alpha)).min(50.0 * mean_us) as u64
}

/// One scheduled arrival in the precomputed trace.
struct Arrival {
    /// Offset from the run's start.
    at: Duration,
    client: usize,
    request: QueryRequest,
}

/// Build the deterministic arrival trace. Request ids start at 1: id 0
/// is the server's "unparseable frame" echo, so hostile-frame
/// rejections can never collide with a real query's answer.
fn build_trace(config: &LoadgenConfig) -> Vec<Arrival> {
    let mut rng = Rng::new(config.seed);
    let patterns = if config.patterns.is_empty() {
        default_patterns()
    } else {
        config.patterns.clone()
    };
    let mut at_us: u64 = 0;
    let mut trace = Vec::with_capacity(config.arrivals);
    for i in 0..config.arrivals {
        at_us += pareto_gap_us(&mut rng, config.mean_interarrival_us, config.tail_alpha);
        let (pattern, strategy) = &patterns[i % patterns.len()];
        let mut request = QueryRequest::new(i as u64 + 1, pattern.clone(), config.take);
        request = match strategy {
            StrategySpec::Shortest => request,
            StrategySpec::Beam { width } => {
                request.with_strategy(StrategySpec::Beam { width: *width })
            }
            StrategySpec::Sampling { .. } => request
                .with_strategy(StrategySpec::Sampling {
                    seed: rng.next_u64() >> 32,
                })
                // A tiny-language sampling stream only ends at its token
                // cap; bound it so the trace cannot wedge the server.
                .with_max_tokens(16),
        };
        if let Some(ms) = config.deadline_ms {
            request = request.with_deadline_ms(ms);
        }
        trace.push(Arrival {
            at: Duration::from_micros(at_us),
            client: i % config.clients.max(1),
            request,
        });
    }
    trace
}

/// One scripted client's live state.
struct SimClient {
    conn: Option<Connection>,
    /// Request id → scheduled arrival instant (latency birth time).
    outstanding: HashMap<u64, Instant>,
    assigned: usize,
    dispatched: usize,
    doomed: bool,
    hostile: bool,
    hostile_sent: bool,
    finished: bool,
}

/// Replay `config`'s trace against the server at `addr` and report
/// what happened.
///
/// # Errors
///
/// Address resolution and connect failures. Per-response protocol
/// errors are counted, not fatal.
pub fn run(addr: impl ToSocketAddrs, config: &LoadgenConfig) -> io::Result<LoadReport> {
    let addr: SocketAddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;
    let trace = build_trace(config);
    let mut report = LoadReport::default();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(trace.len());

    let designated = |i: usize, every: usize| every > 0 && i % every == every - 1;
    let mut clients: Vec<SimClient> = (0..config.clients.max(1))
        .map(|i| SimClient {
            conn: None,
            outstanding: HashMap::new(),
            assigned: 0,
            dispatched: 0,
            doomed: designated(i, config.disconnect_every),
            hostile: designated(i, config.hostile_every),
            hostile_sent: false,
            finished: false,
        })
        .collect();
    for arrival in &trace {
        clients[arrival.client].assigned += 1;
    }
    // A client with no arrivals has nothing to do.
    for client in clients.iter_mut() {
        client.finished = client.assigned == 0;
    }

    let start = Instant::now();
    let mut next = 0usize;
    loop {
        let now = start.elapsed();
        let mut progressed = false;

        // Dispatch every due arrival (open loop: due means due, no
        // matter how many responses are still outstanding).
        while next < trace.len() && trace[next].at <= now {
            let arrival = &trace[next];
            let client = &mut clients[arrival.client];
            if client.conn.is_none() {
                client.conn = Some(Connection::new(TcpStream::connect(addr)?)?);
            }
            if let Some(conn) = client.conn.as_mut() {
                if client.hostile && !client.hostile_sent {
                    conn.queue_frame(b"\x01this is not json{{{");
                    client.hostile_sent = true;
                    report.hostile_frames += 1;
                }
                conn.queue_frame(&Request::Query(arrival.request.clone()).encode());
                client
                    .outstanding
                    .insert(arrival.request.id, start + arrival.at);
                client.dispatched += 1;
                report.sent += 1;
            }
            next += 1;
            progressed = true;
        }

        // Pump every live client: flush writes, read responses.
        for client in clients.iter_mut() {
            let Some(conn) = client.conn.as_mut() else {
                continue;
            };
            if conn.wants_write() {
                progressed |= conn.pump_write();
            }
            for frame in conn.pump_read(MAX_FRAME_BYTES) {
                progressed = true;
                let Ok(response) = Response::decode(&frame) else {
                    report.errors += 1;
                    continue;
                };
                let (id, bucket) = match &response {
                    Response::Matches { id, .. } => (*id, &mut report.completed),
                    Response::Busy { id, .. } => (*id, &mut report.busy),
                    Response::DeadlineExceeded { id } => (*id, &mut report.deadline_exceeded),
                    Response::Error { id, .. } => (*id, &mut report.errors),
                    Response::Stats(_) => continue,
                };
                match client.outstanding.remove(&id) {
                    Some(born) => {
                        *bucket += 1;
                        latencies_us.push(Instant::now().duration_since(born).as_micros() as u64);
                    }
                    // An answer to no query we sent: the hostile
                    // frame's rejection echo (id 0).
                    None => report.hostile_rejects += 1,
                }
            }
            // Script done? Doomed clients drop as soon as their last
            // query is flushed — answers still in flight — while
            // polite clients wait until everything is answered.
            if client.dispatched == client.assigned && !client.finished {
                let flushed = !conn.wants_write();
                if client.doomed && flushed {
                    report.disconnects += 1;
                    report.abandoned += client.outstanding.len() as u64;
                    client.outstanding.clear();
                    client.conn = None;
                    client.finished = true;
                } else if client.outstanding.is_empty() && flushed {
                    client.conn = None;
                    client.finished = true;
                }
            }
        }

        if next == trace.len() && clients.iter().all(|c| c.finished) {
            break;
        }
        if start.elapsed() >= config.timeout {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    report.wall = start.elapsed();
    let answered = report.completed + report.busy + report.deadline_exceeded;
    report.achieved_qps = answered as f64 / report.wall.as_secs_f64().max(1e-9);
    latencies_us.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() - 1) as f64 * q).round() as usize;
        latencies_us[idx.min(latencies_us.len() - 1)]
    };
    report.p50_us = pct(0.50);
    report.p99_us = pct(0.99);
    report.p999_us = pct(0.999);
    report.max_us = latencies_us.last().copied().unwrap_or(0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_heavy_tailed() {
        let config = LoadgenConfig {
            arrivals: 2_000,
            ..LoadgenConfig::default()
        };
        let a = build_trace(&config);
        let b = build_trace(&config);
        assert_eq!(a.len(), 2_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.client, y.client);
            assert_eq!(x.request, y.request);
        }
        // Ids start at 1 (0 is the hostile-echo sentinel).
        assert!(a.iter().all(|ev| ev.request.id >= 1));
        // Heavy tail: the largest gap dwarfs the median gap.
        let mut gaps: Vec<u64> = a
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_micros() as u64)
            .collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(
            max > median * 5,
            "expected a heavy tail, got median {median}µs max {max}µs"
        );
        // Every strategy appears in the mix.
        assert!(a
            .iter()
            .any(|ev| ev.request.strategy == StrategySpec::Shortest));
        assert!(a
            .iter()
            .any(|ev| matches!(ev.request.strategy, StrategySpec::Beam { .. })));
        assert!(a
            .iter()
            .any(|ev| matches!(ev.request.strategy, StrategySpec::Sampling { .. })));
    }

    #[test]
    fn pareto_gaps_hit_the_configured_mean_roughly() {
        let mut rng = Rng::new(42);
        let n = 200_000;
        let mean = 1_000.0;
        let total: u64 = (0..n).map(|_| pareto_gap_us(&mut rng, mean, 1.3)).sum();
        let observed = total as f64 / n as f64;
        // The 50×-mean cap trims the true mean; accept a broad band.
        assert!(
            observed > mean * 0.5 && observed < mean * 2.0,
            "observed mean {observed}µs for configured {mean}µs"
        );
    }
}
