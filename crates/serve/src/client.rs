//! A small blocking client for the serving protocol — the reference
//! peer for tests, benches, and the `relm_client` bin. (Server-side
//! everything is non-blocking; a *client* has nothing better to do than
//! wait for its answer.)

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{decode_frame, encode_frame, Request, Response, MAX_FRAME_BYTES};

/// A blocking protocol client over one TCP connection. Requests may be
/// pipelined: send several, then receive their responses (correlate by
/// the echoed request id — completion order is the server's, not
/// submission order).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connect to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Send one request (does not wait for the answer).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut wire = Vec::new();
        encode_frame(&request.encode(), &mut wire);
        self.stream.write_all(&wire)
    }

    /// Block until one response frame arrives.
    ///
    /// # Errors
    ///
    /// Socket read failures, EOF before a complete frame, or a payload
    /// that fails to decode (surfaced as `InvalidData`).
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut chunk = [0u8; 4096];
        loop {
            match decode_frame(&mut self.buf, MAX_FRAME_BYTES) {
                Ok(Some(frame)) => {
                    return Response::decode(&frame).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    });
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ));
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-frame",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Send one request and block for its response.
    ///
    /// # Errors
    ///
    /// See [`Self::send`] and [`Self::recv`].
    pub fn roundtrip(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        self.recv()
    }
}
