//! `relm_loadgen` — open-loop load harness for a `relm_server` endpoint.
//!
//! ```text
//! relm_loadgen ADDR [--clients N] [--arrivals N] [--mean-us F]
//!              [--alpha F] [--seed N] [--take N] [--deadline-ms N]
//!              [--disconnect-every N] [--hostile-every N]
//!              [--timeout-secs N]
//! ```
//!
//! Replays a deterministic heavy-tailed arrival trace (bounded-Pareto
//! inter-arrivals — the offered load does not slow down when the server
//! does) across `--clients` pipelined connections and reports achieved
//! QPS plus p50/p99/p99.9 scheduled-arrival→response latency. Every Nth
//! client can be made *doomed* (`--disconnect-every`: drops mid-flight,
//! a disconnect storm) or *hostile* (`--hostile-every`: opens with a
//! garbage frame).

use relm_serve::{loadgen, LoadgenConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().expect("usage: relm_loadgen ADDR [flags]");
    let mut config = LoadgenConfig::default();
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} takes a value"))
        };
        match arg.as_str() {
            "--clients" => config.clients = grab("--clients").parse().expect("--clients"),
            "--arrivals" => config.arrivals = grab("--arrivals").parse().expect("--arrivals"),
            "--mean-us" => {
                config.mean_interarrival_us = grab("--mean-us").parse().expect("--mean-us");
            }
            "--alpha" => config.tail_alpha = grab("--alpha").parse().expect("--alpha"),
            "--seed" => config.seed = grab("--seed").parse().expect("--seed"),
            "--take" => config.take = grab("--take").parse().expect("--take"),
            "--deadline-ms" => {
                config.deadline_ms = Some(grab("--deadline-ms").parse().expect("--deadline-ms"));
            }
            "--disconnect-every" => {
                config.disconnect_every = grab("--disconnect-every")
                    .parse()
                    .expect("--disconnect-every");
            }
            "--hostile-every" => {
                config.hostile_every = grab("--hostile-every").parse().expect("--hostile-every");
            }
            "--timeout-secs" => {
                config.timeout = std::time::Duration::from_secs(
                    grab("--timeout-secs").parse().expect("--timeout-secs"),
                );
            }
            other => panic!("unknown flag: {other}"),
        }
    }

    let offered_qps = 1e6 / config.mean_interarrival_us;
    println!(
        "relm_loadgen: {} arrivals over {} clients, offered ~{offered_qps:.0} qps \
         (alpha {}, seed {})",
        config.arrivals, config.clients, config.tail_alpha, config.seed
    );
    let report = loadgen::run(&addr, &config).expect("load run");
    println!(
        "relm_loadgen latency: p50 {}us p99 {}us p999 {}us max {}us",
        report.p50_us, report.p99_us, report.p999_us, report.max_us
    );
    println!(
        "relm_loadgen qps: {:.1} achieved over {:.3}s wall",
        report.achieved_qps,
        report.wall.as_secs_f64()
    );
    if report.busy + report.deadline_exceeded + report.errors > 0 {
        println!(
            "relm_loadgen refusals: {} busy, {} deadline_exceeded, {} errors",
            report.busy, report.deadline_exceeded, report.errors
        );
    }
    if report.disconnects + report.hostile_frames > 0 {
        println!(
            "relm_loadgen chaos: {} disconnects ({} queries abandoned), \
             {} hostile frames ({} rejected)",
            report.disconnects, report.abandoned, report.hostile_frames, report.hostile_rejects
        );
    }
    println!(
        "relm_loadgen done: {} sent, {} completed, {} abandoned",
        report.sent, report.completed, report.abandoned
    );
    // A clean run answers everything it was owed: completions plus typed
    // refusals must cover every non-abandoned query.
    let owed = report.sent - report.abandoned;
    let answered = report.completed + report.busy + report.deadline_exceeded + report.errors;
    if answered < owed {
        eprintln!(
            "relm_loadgen: {} of {owed} owed responses missing",
            owed - answered
        );
        std::process::exit(1);
    }
}
