//! `relm_loadgen` — open-loop load harness for a `relm_server` endpoint.
//!
//! ```text
//! relm_loadgen ADDR [--clients N] [--arrivals N] [--mean-us F]
//!              [--alpha F] [--seed N] [--take N] [--deadline-ms N]
//!              [--disconnect-every N] [--hostile-every N]
//!              [--timeout-secs N]
//! ```
//!
//! Replays a deterministic heavy-tailed arrival trace (bounded-Pareto
//! inter-arrivals — the offered load does not slow down when the server
//! does) across `--clients` pipelined connections and reports achieved
//! QPS plus p50/p99/p99.9 scheduled-arrival→response latency. Every Nth
//! client can be made *doomed* (`--disconnect-every`: drops mid-flight,
//! a disconnect storm) or *hostile* (`--hostile-every`: opens with a
//! garbage frame).

#![forbid(unsafe_code)]

use relm_serve::{loadgen, LoadgenConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("relm_loadgen: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

fn run() -> Result<std::process::ExitCode, String> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().ok_or("usage: relm_loadgen ADDR [flags]")?;
    let mut config = LoadgenConfig::default();
    while let Some(arg) = args.next() {
        // Each flag takes one parseable value; report the flag name on
        // either a missing or malformed one.
        let mut grab = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} takes a value"))
        };
        fn parse<T: std::str::FromStr>(what: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("{what}: bad value {v:?}"))
        }
        match arg.as_str() {
            "--clients" => config.clients = parse("--clients", grab("--clients")?)?,
            "--arrivals" => config.arrivals = parse("--arrivals", grab("--arrivals")?)?,
            "--mean-us" => {
                config.mean_interarrival_us = parse("--mean-us", grab("--mean-us")?)?;
            }
            "--alpha" => config.tail_alpha = parse("--alpha", grab("--alpha")?)?,
            "--seed" => config.seed = parse("--seed", grab("--seed")?)?,
            "--take" => config.take = parse("--take", grab("--take")?)?,
            "--deadline-ms" => {
                config.deadline_ms = Some(parse("--deadline-ms", grab("--deadline-ms")?)?);
            }
            "--disconnect-every" => {
                config.disconnect_every = parse("--disconnect-every", grab("--disconnect-every")?)?;
            }
            "--hostile-every" => {
                config.hostile_every = parse("--hostile-every", grab("--hostile-every")?)?;
            }
            "--timeout-secs" => {
                config.timeout = std::time::Duration::from_secs(parse(
                    "--timeout-secs",
                    grab("--timeout-secs")?,
                )?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }

    let offered_qps = 1e6 / config.mean_interarrival_us;
    println!(
        "relm_loadgen: {} arrivals over {} clients, offered ~{offered_qps:.0} qps \
         (alpha {}, seed {})",
        config.arrivals, config.clients, config.tail_alpha, config.seed
    );
    let report = loadgen::run(&addr, &config).map_err(|e| format!("load run: {e}"))?;
    println!(
        "relm_loadgen latency: p50 {}us p99 {}us p999 {}us max {}us",
        report.p50_us, report.p99_us, report.p999_us, report.max_us
    );
    println!(
        "relm_loadgen qps: {:.1} achieved over {:.3}s wall",
        report.achieved_qps,
        report.wall.as_secs_f64()
    );
    if report.busy + report.deadline_exceeded + report.errors > 0 {
        println!(
            "relm_loadgen refusals: {} busy, {} deadline_exceeded, {} errors",
            report.busy, report.deadline_exceeded, report.errors
        );
    }
    if report.disconnects + report.hostile_frames > 0 {
        println!(
            "relm_loadgen chaos: {} disconnects ({} queries abandoned), \
             {} hostile frames ({} rejected)",
            report.disconnects, report.abandoned, report.hostile_frames, report.hostile_rejects
        );
    }
    println!(
        "relm_loadgen done: {} sent, {} completed, {} abandoned",
        report.sent, report.completed, report.abandoned
    );
    // A clean run answers everything it was owed: completions plus typed
    // refusals must cover every non-abandoned query.
    let owed = report.sent - report.abandoned;
    let answered = report.completed + report.busy + report.deadline_exceeded + report.errors;
    if answered < owed {
        eprintln!(
            "relm_loadgen: {} of {owed} owed responses missing",
            owed - answered
        );
        return Ok(std::process::ExitCode::from(1));
    }
    Ok(std::process::ExitCode::SUCCESS)
}
