//! `relm_client` — a scripted client for a `relm_server` endpoint.
//!
//! ```text
//! relm_client ADDR [--take N] [--stats] PATTERN [PATTERN...]
//! ```
//!
//! Pipelines one query per `PATTERN` (all sent before any response is
//! read — the server interleaves them through its coalescing driver),
//! prints one line per match as responses arrive, and with `--stats`
//! finishes by printing the server's counters. A `PREFIX::PATTERN`
//! argument attaches a conditioning prefix.

#![forbid(unsafe_code)]

use relm_serve::{QueryRequest, Request, Response, ServeClient};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("relm_client: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let addr = args
        .next()
        .ok_or("usage: relm_client ADDR [--take N] [--stats] PATTERN [PATTERN...]")?;
    let mut take = 2usize;
    let mut want_stats = false;
    let mut patterns: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--take" => {
                take = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--take takes a number")?;
            }
            "--stats" => want_stats = true,
            other => patterns.push(other.to_string()),
        }
    }

    let mut client = ServeClient::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    for (i, spec) in patterns.iter().enumerate() {
        let (prefix, pattern) = match spec.split_once("::") {
            Some((prefix, pattern)) => (Some(prefix), pattern),
            None => (None, spec.as_str()),
        };
        let mut request = QueryRequest::new(i as u64, pattern, take);
        if let Some(prefix) = prefix {
            request = request.with_prefix(prefix);
        }
        client
            .send(&Request::Query(request))
            .map_err(|e| format!("sending query {i}: {e}"))?;
    }
    for _ in 0..patterns.len() {
        match client.recv().map_err(|e| format!("receiving: {e}"))? {
            Response::Matches { id, matches } => {
                for m in &matches {
                    // The decimal echo is for human eyes only; the
                    // bit-exact score travels in `score_bits` beside it.
                    // lint: allow(float_fmt, "readability echo; exact bits printed alongside")
                    println!(
                        "match[{id}]: {:?} log_prob={:.6} score_bits={:016x}",
                        m.text,
                        m.log_prob(),
                        m.score_bits
                    );
                }
                if matches.is_empty() {
                    println!("match[{id}]: (none)");
                }
            }
            Response::Error { id, message } => println!("error[{id}]: {message}"),
            Response::Busy { id, message } => println!("busy[{id}]: {message}"),
            Response::DeadlineExceeded { id } => println!("deadline_exceeded[{id}]"),
            Response::Stats(_) => {
                return Err("protocol violation: stats answer to a query request".into())
            }
        }
    }
    if want_stats {
        match client
            .roundtrip(&Request::Stats)
            .map_err(|e| format!("stats roundtrip: {e}"))?
        {
            Response::Stats(stats) => println!(
                "server stats: {} admitted, {} completed, {} cancelled, in flight {}, \
                 mean batch fill {:.2} ({} cross-query batches)",
                stats.admitted,
                stats.completed,
                stats.cancelled,
                stats.in_flight,
                stats.mean_batch_fill,
                stats.cross_query_batches,
            ),
            other => println!("unexpected stats answer: {other:?}"),
        }
    }
    Ok(())
}
