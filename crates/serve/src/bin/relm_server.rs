//! `relm_server` — a standalone ReLM serving endpoint over a small
//! built-in demonstration model.
//!
//! ```text
//! relm_server [ADDR] [--shards N] [--max-inflight N]
//!             [--max-inflight-per-conn N] [--max-requests N]
//!             [--plan-store DIR]
//! ```
//!
//! Binds `ADDR` (default `127.0.0.1:7474`; use port 0 for an ephemeral
//! port, printed on startup), trains the deterministic toy corpus model
//! every scripted client knows, and serves until killed — or, with
//! `--max-requests N`, until `N` queries completed (the deterministic
//! shutdown CI's smoke job uses). `--shards N` runs N driver shards
//! with connection affinity (plan memo, scoring cache, and store stay
//! shared); `--max-inflight` / `--max-inflight-per-conn` set the
//! backpressure caps. `--plan-store DIR` points at a warm-artifact
//! store: compiled plans are preloaded from it at boot (the
//! `relm_store compile` bin fills one ahead of time), written back on
//! every fresh compile, and the scoring cache is flushed to it on
//! shutdown. Drive it with the `relm_client` and `relm_loadgen` bins.

#![forbid(unsafe_code)]

use std::sync::atomic::AtomicBool;

use relm_bpe::BpeTokenizer;
use relm_core::{Relm, SessionConfig};
use relm_lm::{NGramConfig, NGramLm};
use relm_serve::{RelmServer, ServerConfig};

/// The deterministic demonstration corpus shared with `relm_client`'s
/// example queries (and the serve smoke job in CI).
pub const DEMO_DOCS: [&str; 4] = [
    "the cat sat on the mat",
    "the cat sat on the mat",
    "the dog sat on the log",
    "the cow ate the grass",
];

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("relm_server: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

/// Parse one numeric flag value or explain which flag wanted it.
fn numeric_flag<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    args.next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} takes a number"))
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut addr = "127.0.0.1:7474".to_string();
    let mut config = ServerConfig::new();
    let mut session_config = SessionConfig::new();
    let mut store_configured = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-requests" => {
                config = config.with_max_requests(numeric_flag(&mut args, "--max-requests")?);
            }
            "--shards" => {
                config = config.with_shards(numeric_flag(&mut args, "--shards")?);
            }
            "--max-inflight" => {
                config = config.with_max_inflight(numeric_flag(&mut args, "--max-inflight")?);
            }
            "--max-inflight-per-conn" => {
                config = config.with_max_inflight_per_conn(numeric_flag(
                    &mut args,
                    "--max-inflight-per-conn",
                )?);
            }
            "--plan-store" => {
                let dir = args.next().ok_or("--plan-store takes a directory")?;
                session_config = session_config.with_plan_store(dir);
                config = config.with_preload_store(true).with_flush_store(true);
                store_configured = true;
            }
            other => addr = other.to_string(),
        }
    }

    let corpus = DEMO_DOCS.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 80);
    let model = NGramLm::train(&tokenizer, &DEMO_DOCS, NGramConfig::xl());
    let client = Relm::builder(model, tokenizer)
        .config(session_config)
        .build()
        .map_err(|e| format!("building demo session: {e}"))?;

    let listener =
        std::net::TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("reading bound address: {e}"))?;
    println!("relm_server listening on {addr}");

    let server = RelmServer::with_config(client, config);
    let shutdown = AtomicBool::new(false);
    let report = server
        .serve(listener, &shutdown)
        .map_err(|e| format!("serve loop: {e}"))?;
    if store_configured {
        let stats = server.client().stats();
        println!(
            "relm_server store: {} hits, {} misses, {} bytes written, \
             {} plans preloaded, {} cache entries preloaded, {} bytes flushed",
            stats.store_hits,
            stats.store_misses,
            stats.store_bytes_written,
            report.plans_preloaded,
            report.cache_entries_preloaded,
            report.store_flush_bytes,
        );
    }
    for shard in &report.shards {
        println!(
            "relm_server shard {}: {} connections, {} admitted, {} completed, \
             {} cancelled, {} expired, {} busy_rejections, {} store hits, \
             {} cross-query batches",
            shard.shard,
            shard.connections,
            shard.admitted,
            shard.completed,
            shard.cancelled,
            shard.expired,
            shard.busy_rejections,
            shard.store_hits,
            shard.cross_query_batches,
        );
    }
    println!(
        "relm_server done: {} connections, {} admitted, {} completed, {} cancelled, \
         mean batch fill {:.2} ({} cross-query batches)",
        report.accepted,
        report.admitted,
        report.completed,
        report.cancelled,
        report.mean_batch_fill,
        report.cross_query_batches,
    );
    Ok(())
}
