//! The wire protocol: length-prefixed frames carrying a small JSON-ish
//! payload.
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Length-prefixing keeps the
//! connection state machine trivial (no delimiter scanning, no partial
//! UTF-8 headaches) and gives the server a hard per-message size bound
//! before it allocates anything.
//!
//! The JSON dialect is deliberately small — objects, arrays, strings,
//! `f64` numbers, booleans, null — parsed and rendered by the hand-rolled
//! [`Json`] type (the container has no crates.io access, so no serde).
//! One wrinkle matters for correctness: **match scores cross the wire as
//! the hex IEEE-754 bit pattern** (`"score_bits":"bff0000000000000"`),
//! never as a decimal float. Decimal round-trips can perturb the last
//! ulp, and the serving layer's contract is that a served query's
//! results are *byte-identical* to solo execution — `tests/serve.rs`
//! compares those bits across the socket.

use relm_core::{
    QueryString, RelmError, SearchQuery, SearchStrategy, TokenizationStrategy as CoreTokenization,
};
use relm_lm::DecodingPolicy;

/// Default hard cap on one frame's payload (1 MiB) — generous for
/// lexicon-scale patterns, small enough that a hostile length prefix
/// cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Wire-format version of the request/response frame schema. Bump this
/// whenever [`Request`] or [`Response`] changes shape — `relm_lint`
/// fingerprints both types and fails CI on an unversioned edit.
pub const PROTOCOL_VERSION: u32 = 1;

/// A protocol violation (framing or JSON) — the connection that produced
/// it is answered with an error response or closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Append one frame (length prefix + payload) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Pop one complete frame off the front of `buf`, if present.
///
/// Returns `Ok(None)` while the frame is still partial.
///
/// # Errors
///
/// A length prefix above `max_bytes` — the caller must drop the
/// connection; the stream can never resynchronize.
pub fn decode_frame(buf: &mut Vec<u8>, max_bytes: usize) -> Result<Option<Vec<u8>>, ProtocolError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_bytes {
        return Err(err(format!("frame of {len} bytes exceeds cap {max_bytes}")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// A JSON value in the protocol's small dialect. Numbers are `f64`
/// (exact for every integer the protocol carries — ids, seeds, widths
/// and counts all fit 2^53); anything that must round-trip bit-exactly
/// (scores) travels as a hex string instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always rendered in `f64` shortest form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (the protocol never relies on key
    /// order, but stable rendering keeps frames reproducible).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON value (the whole input must be consumed).
    ///
    /// # Errors
    ///
    /// Malformed JSON, trailing bytes, or invalid escapes.
    pub fn parse(input: &str) -> Result<Json, ProtocolError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing bytes after JSON value"));
        }
        Ok(value)
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Nesting bound for the recursive-descent parser. The protocol's own
/// messages nest three levels; the bound exists because the parser runs
/// on the serve thread against attacker-supplied payloads — without it,
/// one frame of a few kilobytes of `[` characters would overflow the
/// stack and abort the whole server process.
const MAX_JSON_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ProtocolError> {
    if depth > MAX_JSON_DEPTH {
        return Err(err(format!("JSON nested deeper than {MAX_JSON_DEPTH}")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err("expected ':' in object"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err("expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, ProtocolError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(format!("expected literal '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ProtocolError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("non-UTF-8 number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(format!("malformed number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ProtocolError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape"))?;
                        // Surrogate pairs are not supported (the protocol
                        // never emits them); lone surrogates are rejected.
                        let c = char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte sequence is valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("non-UTF-8"))?;
                let c = rest.chars().next().ok_or_else(|| err("empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// The traversal a [`QueryRequest`] asks for — the wire form of
/// [`SearchStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// Dijkstra shortest path (`"strategy":"shortest"`).
    Shortest,
    /// Seeded random sampling (`"strategy":"sampling","seed":n`).
    Sampling {
        /// RNG seed (reproducible streams).
        seed: u64,
    },
    /// Beam search (`"strategy":"beam","width":n`).
    Beam {
        /// Beam width (≥ 1).
        width: usize,
    },
}

/// One query request as it crosses the wire. The subset of
/// [`SearchQuery`] the protocol exposes; [`QueryRequest::to_search_query`]
/// is the **single** mapping both server and test harness use, so a
/// served query and its solo reference are guaranteed to be the same
/// query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed in the response. Responses
    /// may arrive out of submission order (queries complete when they
    /// complete), so pipelined clients need it to match answers up.
    pub id: u64,
    /// The full pattern (prefix included), as in Figure 4 of the paper.
    pub pattern: String,
    /// Optional conditioning-prefix pattern.
    pub prefix: Option<String>,
    /// Traversal strategy.
    pub strategy: StrategySpec,
    /// Maximum matches to collect (the `take` bound; mandatory because
    /// sampling streams never end on their own).
    pub max_results: usize,
    /// Per-match token cap (model max when absent).
    pub max_tokens: Option<usize>,
    /// Top-k decoding rule (unfiltered when absent).
    pub top_k: Option<usize>,
    /// Require EOS-terminated matches (§4.4's `terminated`).
    pub require_eos: bool,
    /// Represent all token encodings (`true`) or canonical only.
    pub all_encodings: bool,
    /// Optional wall-clock budget in milliseconds: if the query has
    /// not completed this many ms after admission, the server stops it
    /// and answers [`Response::DeadlineExceeded`] instead of results.
    pub deadline_ms: Option<u64>,
}

impl QueryRequest {
    /// A request with the protocol defaults: shortest path, canonical
    /// encodings, unfiltered decoding.
    pub fn new(id: u64, pattern: impl Into<String>, max_results: usize) -> Self {
        QueryRequest {
            id,
            pattern: pattern.into(),
            prefix: None,
            strategy: StrategySpec::Shortest,
            max_results,
            max_tokens: None,
            top_k: None,
            require_eos: false,
            all_encodings: false,
            deadline_ms: None,
        }
    }

    /// Attach a conditioning prefix.
    #[must_use]
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = Some(prefix.into());
        self
    }

    /// Set the traversal strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the per-match token cap.
    #[must_use]
    pub fn with_max_tokens(mut self, max_tokens: usize) -> Self {
        self.max_tokens = Some(max_tokens);
        self
    }

    /// Set the top-k decoding rule.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = Some(top_k);
        self
    }

    /// Set the wall-clock completion deadline in milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The one wire-to-engine mapping: the [`SearchQuery`] this request
    /// executes as. Used by the server *and* by identity tests' solo
    /// reference runs, so the two can never drift apart.
    pub fn to_search_query(&self) -> SearchQuery {
        let mut qs = QueryString::new(self.pattern.clone());
        if let Some(prefix) = &self.prefix {
            qs = qs.with_prefix(prefix.clone());
        }
        let mut query = SearchQuery::new(qs).with_strategy(match self.strategy {
            StrategySpec::Shortest => SearchStrategy::ShortestPath,
            StrategySpec::Sampling { seed } => SearchStrategy::RandomSampling { seed },
            StrategySpec::Beam { width } => SearchStrategy::Beam { width },
        });
        if let Some(max_tokens) = self.max_tokens {
            query = query.with_max_tokens(max_tokens);
        }
        if let Some(top_k) = self.top_k {
            query = query.with_policy(DecodingPolicy::top_k(top_k));
        }
        if self.require_eos {
            query = query.with_eos_termination();
        }
        if self.all_encodings {
            query = query.with_tokenization(CoreTokenization::All);
        }
        query
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a query.
    Query(QueryRequest),
    /// Snapshot the server's counters.
    Stats,
}

impl Request {
    /// Encode to a JSON payload (framing is the transport's job).
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Stats => Json::Obj(vec![("op".into(), Json::Str("stats".into()))]),
            Request::Query(q) => {
                let mut fields = vec![
                    ("op".into(), Json::Str("query".into())),
                    ("id".into(), Json::Num(q.id as f64)),
                    ("pattern".into(), Json::Str(q.pattern.clone())),
                ];
                if let Some(prefix) = &q.prefix {
                    fields.push(("prefix".into(), Json::Str(prefix.clone())));
                }
                match q.strategy {
                    StrategySpec::Shortest => {
                        fields.push(("strategy".into(), Json::Str("shortest".into())));
                    }
                    StrategySpec::Sampling { seed } => {
                        fields.push(("strategy".into(), Json::Str("sampling".into())));
                        fields.push(("seed".into(), Json::Num(seed as f64)));
                    }
                    StrategySpec::Beam { width } => {
                        fields.push(("strategy".into(), Json::Str("beam".into())));
                        fields.push(("width".into(), Json::Num(width as f64)));
                    }
                }
                fields.push(("max_results".into(), Json::Num(q.max_results as f64)));
                if let Some(max_tokens) = q.max_tokens {
                    fields.push(("max_tokens".into(), Json::Num(max_tokens as f64)));
                }
                if let Some(top_k) = q.top_k {
                    fields.push(("top_k".into(), Json::Num(top_k as f64)));
                }
                if q.require_eos {
                    fields.push(("require_eos".into(), Json::Bool(true)));
                }
                if q.all_encodings {
                    fields.push(("tokenization".into(), Json::Str("all".into())));
                }
                if let Some(deadline_ms) = q.deadline_ms {
                    fields.push(("deadline_ms".into(), Json::Num(deadline_ms as f64)));
                }
                Json::Obj(fields)
            }
        };
        json.render().into_bytes()
    }

    /// Decode from a JSON payload.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a request missing mandatory fields.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|_| err("non-UTF-8 payload"))?;
        let json = Json::parse(text)?;
        match json.get("op").and_then(Json::as_str) {
            Some("stats") => Ok(Request::Stats),
            Some("query") => {
                let pattern = json
                    .get("pattern")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("query without 'pattern'"))?
                    .to_string();
                let max_results = json
                    .get("max_results")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| err("query without 'max_results'"))?;
                let strategy = match json.get("strategy").and_then(Json::as_str) {
                    None | Some("shortest") => StrategySpec::Shortest,
                    Some("sampling") => StrategySpec::Sampling {
                        seed: json.get("seed").and_then(Json::as_u64).unwrap_or(0),
                    },
                    Some("beam") => StrategySpec::Beam {
                        width: json
                            .get("width")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| err("beam strategy without 'width'"))?,
                    },
                    Some(other) => return Err(err(format!("unknown strategy '{other}'"))),
                };
                Ok(Request::Query(QueryRequest {
                    id: json.get("id").and_then(Json::as_u64).unwrap_or(0),
                    pattern,
                    prefix: json
                        .get("prefix")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                    strategy,
                    max_results,
                    max_tokens: json.get("max_tokens").and_then(Json::as_usize),
                    top_k: json.get("top_k").and_then(Json::as_usize),
                    require_eos: json
                        .get("require_eos")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    all_encodings: json.get("tokenization").and_then(Json::as_str) == Some("all"),
                    deadline_ms: json.get("deadline_ms").and_then(Json::as_u64),
                }))
            }
            _ => Err(err("request without a known 'op'")),
        }
    }
}

/// One match as it crosses the wire: text plus the **exact** IEEE-754
/// bits of its log-probability.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMatch {
    /// The decoded matching string.
    pub text: String,
    /// `log_prob.to_bits()` — bit-exact across the socket.
    pub score_bits: u64,
    /// Whether the emitted token sequence was the canonical encoding.
    pub canonical: bool,
    /// Token count of the match (prefix included).
    pub num_tokens: usize,
}

impl WireMatch {
    /// The log-probability these bits encode.
    pub fn log_prob(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }
}

/// Server counters as they cross the wire (the `stats` op's answer).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Queries admitted to the driver.
    pub admitted: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries cancelled (client disconnected mid-flight).
    pub cancelled: u64,
    /// Queries stopped because their `deadline_ms` elapsed.
    pub expired: u64,
    /// Admissions refused by backpressure (per-connection quota or
    /// global in-flight cap) — answered with [`Response::Busy`].
    pub busy_rejections: u64,
    /// Queries currently in flight (server-wide, all shards).
    pub in_flight: u64,
    /// The shard that answered this stats request (a connection's
    /// whole stream lives on one shard).
    pub shard: u64,
    /// Total shard count the server is running.
    pub shards: u64,
    /// Mean contexts per coalesced model batch (set-wide batch fill).
    pub mean_batch_fill: f64,
    /// Model batches that mixed contexts from two or more queries.
    pub cross_query_batches: u64,
}

/// A server-to-client message, correlated by the request's echoed `id`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed query's matches.
    Matches {
        /// The request's `id`, echoed.
        id: u64,
        /// The matches, in the query's deterministic order.
        matches: Vec<WireMatch>,
    },
    /// A failed request (bad pattern, protocol misuse).
    Error {
        /// The request's `id` when it could be parsed, else 0.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Admission refused by backpressure: the connection already has
    /// its quota of queries in flight, or the server-wide cap is
    /// reached. Nothing was admitted; the client may retry after its
    /// outstanding queries drain.
    Busy {
        /// The request's `id`, echoed.
        id: u64,
        /// Which quota refused the admission.
        message: String,
    },
    /// The query's `deadline_ms` elapsed before it completed; the
    /// driver stopped it and discarded its partial results.
    DeadlineExceeded {
        /// The request's `id`, echoed.
        id: u64,
    },
    /// Counters (answer to [`Request::Stats`]).
    Stats(WireServerStats),
}

impl Response {
    /// Encode to a JSON payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Matches { id, matches } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("id".into(), Json::Num(*id as f64)),
                (
                    "matches".into(),
                    Json::Arr(
                        matches
                            .iter()
                            .map(|m| {
                                Json::Obj(vec![
                                    ("text".into(), Json::Str(m.text.clone())),
                                    (
                                        "score_bits".into(),
                                        Json::Str(format!("{:016x}", m.score_bits)),
                                    ),
                                    ("canonical".into(), Json::Bool(m.canonical)),
                                    ("num_tokens".into(), Json::Num(m.num_tokens as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Error { id, message } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("id".into(), Json::Num(*id as f64)),
                ("error".into(), Json::Str(message.clone())),
            ]),
            Response::Busy { id, message } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("busy".into(), Json::Bool(true)),
                ("id".into(), Json::Num(*id as f64)),
                ("error".into(), Json::Str(message.clone())),
            ]),
            Response::DeadlineExceeded { id } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("deadline_exceeded".into(), Json::Bool(true)),
                ("id".into(), Json::Num(*id as f64)),
                ("error".into(), Json::Str("deadline exceeded".into())),
            ]),
            Response::Stats(stats) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "server".into(),
                    Json::Obj(vec![
                        ("accepted".into(), Json::Num(stats.accepted as f64)),
                        ("admitted".into(), Json::Num(stats.admitted as f64)),
                        ("completed".into(), Json::Num(stats.completed as f64)),
                        ("cancelled".into(), Json::Num(stats.cancelled as f64)),
                        ("expired".into(), Json::Num(stats.expired as f64)),
                        (
                            "busy_rejections".into(),
                            Json::Num(stats.busy_rejections as f64),
                        ),
                        ("in_flight".into(), Json::Num(stats.in_flight as f64)),
                        ("mean_batch_fill".into(), Json::Num(stats.mean_batch_fill)),
                        (
                            "cross_query_batches".into(),
                            Json::Num(stats.cross_query_batches as f64),
                        ),
                        ("shard".into(), Json::Num(stats.shard as f64)),
                        ("shards".into(), Json::Num(stats.shards as f64)),
                    ]),
                ),
            ]),
        };
        json.render().into_bytes()
    }

    /// Decode from a JSON payload.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a response missing mandatory fields.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|_| err("non-UTF-8 payload"))?;
        let json = Json::parse(text)?;
        let id = json.get("id").and_then(Json::as_u64).unwrap_or(0);
        if json.get("ok").and_then(Json::as_bool) == Some(false) {
            // Typed refusals carry a marker flag next to `ok:false`;
            // check them before the generic error so old-style error
            // frames (no flag) keep decoding as `Error`.
            if json.get("busy").and_then(Json::as_bool) == Some(true) {
                return Ok(Response::Busy {
                    id,
                    message: json
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("server busy")
                        .to_string(),
                });
            }
            if json.get("deadline_exceeded").and_then(Json::as_bool) == Some(true) {
                return Ok(Response::DeadlineExceeded { id });
            }
            return Ok(Response::Error {
                id,
                message: json
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            });
        }
        if let Some(server) = json.get("server") {
            let field = |name: &str| server.get(name).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Stats(WireServerStats {
                accepted: field("accepted"),
                admitted: field("admitted"),
                completed: field("completed"),
                cancelled: field("cancelled"),
                expired: field("expired"),
                busy_rejections: field("busy_rejections"),
                in_flight: field("in_flight"),
                mean_batch_fill: server
                    .get("mean_batch_fill")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                cross_query_batches: field("cross_query_batches"),
                shard: field("shard"),
                shards: field("shards"),
            }));
        }
        let matches = json
            .get("matches")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("response without 'matches'"))?
            .iter()
            .map(|m| {
                Ok(WireMatch {
                    text: m
                        .get("text")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("match without 'text'"))?
                        .to_string(),
                    score_bits: u64::from_str_radix(
                        m.get("score_bits")
                            .and_then(Json::as_str)
                            .ok_or_else(|| err("match without 'score_bits'"))?,
                        16,
                    )
                    .map_err(|_| err("malformed 'score_bits'"))?,
                    canonical: m.get("canonical").and_then(Json::as_bool).unwrap_or(true),
                    num_tokens: m.get("num_tokens").and_then(Json::as_usize).unwrap_or(0),
                })
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        Ok(Response::Matches { id, matches })
    }
}

/// Flatten a [`RelmError`] into the wire error string.
pub fn error_response(id: u64, error: &RelmError) -> Response {
    Response::Error {
        id,
        message: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_split_reads_reassemble() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        encode_frame(b"", &mut wire);
        encode_frame("wörld".as_bytes(), &mut wire);
        // Feed the stream one byte at a time: frames must pop out whole.
        let mut buf = Vec::new();
        let mut frames = Vec::new();
        for byte in wire {
            buf.push(byte);
            while let Some(frame) = decode_frame(&mut buf, MAX_FRAME_BYTES).unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"hello");
        assert!(frames[1].is_empty());
        assert_eq!(frames[2], "wörld".as_bytes());
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(&[0u8; 64], &mut buf);
        assert!(decode_frame(&mut buf, 16).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Regression: the recursive-descent parser had no depth bound,
        // so one hostile frame of a few KB of '[' overflowed the serve
        // thread's stack and aborted the whole process.
        let hostile = "[".repeat(10_000);
        assert!(Json::parse(&hostile).is_err());
        let hostile = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
        assert!(Json::parse(&hostile).is_err());
        // Sane nesting up to the bound still parses.
        let fine = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn json_roundtrips() {
        let value = Json::Obj(vec![
            (
                "s".into(),
                Json::Str("a \"quote\" and a \\ and a\nline".into()),
            ),
            ("n".into(), Json::Num(-12.5)),
            ("i".into(), Json::Num(42.0)),
            ("b".into(), Json::Bool(true)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("αβ".into())]),
            ),
        ]);
        let rendered = value.render();
        assert_eq!(Json::parse(&rendered).unwrap(), value);
        assert!(Json::parse("{\"unterminated\": ").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Stats,
            Request::Query(QueryRequest::new(7, "the ((cat)|(dog)) sat", 3)),
            Request::Query(
                QueryRequest::new(8, "p ([0-9]{3})", 5)
                    .with_prefix("p ")
                    .with_strategy(StrategySpec::Sampling { seed: 99 })
                    .with_max_tokens(16)
                    .with_top_k(40),
            ),
            Request::Query(
                QueryRequest::new(9, "x", 1).with_strategy(StrategySpec::Beam { width: 16 }),
            ),
            Request::Query(QueryRequest::new(10, "y", 2).with_deadline_ms(250)),
        ];
        for request in requests {
            assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        }
        assert!(Request::decode(b"{\"op\":\"nope\"}").is_err());
        assert!(Request::decode(b"{\"op\":\"query\",\"pattern\":\"x\"}").is_err());
    }

    #[test]
    fn responses_roundtrip_with_exact_score_bits() {
        // A score whose decimal rendering would lose the last ulp.
        let tricky = f64::from_bits(0xbff0_0000_0000_0001);
        let response = Response::Matches {
            id: 3,
            matches: vec![WireMatch {
                text: "the cat sat".into(),
                score_bits: tricky.to_bits(),
                canonical: true,
                num_tokens: 4,
            }],
        };
        let decoded = Response::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        let Response::Matches { matches, .. } = decoded else {
            unreachable!()
        };
        assert_eq!(matches[0].log_prob().to_bits(), tricky.to_bits());

        let error = Response::Error {
            id: 0,
            message: "bad pattern".into(),
        };
        assert_eq!(Response::decode(&error.encode()).unwrap(), error);

        let stats = Response::Stats(WireServerStats {
            accepted: 2,
            admitted: 9,
            completed: 8,
            cancelled: 1,
            expired: 2,
            busy_rejections: 3,
            in_flight: 0,
            mean_batch_fill: 4.75,
            cross_query_batches: 6,
            shard: 1,
            shards: 4,
        });
        assert_eq!(Response::decode(&stats.encode()).unwrap(), stats);
    }

    #[test]
    fn typed_refusal_frames_roundtrip_and_stay_distinct_from_errors() {
        let busy = Response::Busy {
            id: 11,
            message: "server at capacity: 1024 queries in flight".into(),
        };
        assert_eq!(Response::decode(&busy.encode()).unwrap(), busy);

        let expired = Response::DeadlineExceeded { id: 12 };
        assert_eq!(Response::decode(&expired.encode()).unwrap(), expired);

        // A plain error frame (no marker flag) still decodes as Error,
        // and neither refusal ever decodes as a generic Error.
        let error = Response::Error {
            id: 13,
            message: "bad pattern".into(),
        };
        assert_eq!(Response::decode(&error.encode()).unwrap(), error);
        assert!(matches!(
            Response::decode(&busy.encode()).unwrap(),
            Response::Busy { .. }
        ));
        assert!(matches!(
            Response::decode(&expired.encode()).unwrap(),
            Response::DeadlineExceeded { .. }
        ));
    }

    #[test]
    fn query_request_maps_onto_search_query() {
        let request = QueryRequest::new(1, "the ((cat)|(dog)) sat", 2)
            .with_prefix("the ")
            .with_strategy(StrategySpec::Beam { width: 8 })
            .with_max_tokens(12)
            .with_top_k(40);
        let query = request.to_search_query();
        assert_eq!(query.query_string.pattern, "the ((cat)|(dog)) sat");
        assert_eq!(query.query_string.prefix.as_deref(), Some("the "));
        assert_eq!(query.strategy, SearchStrategy::Beam { width: 8 });
        assert_eq!(query.max_tokens, Some(12));
        assert_eq!(query.policy.top_k, Some(40));
    }
}
