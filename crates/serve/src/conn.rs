//! Per-connection state machine: buffered non-blocking reads and
//! writes over one TCP stream, surfacing complete protocol frames.
//!
//! A connection is always in one of three observable states:
//!
//! 1. **open** — bytes flow both ways; [`Connection::pump_read`]
//!    accretes the read buffer and pops complete frames,
//!    [`Connection::pump_write`] drains the write queue;
//! 2. **draining** — the read side is done (`read_closed`: EOF, read
//!    error, or protocol violation) but queued response frames still
//!    flush. Per the protocol contract, a peer that closes its read
//!    side **abandons its in-flight queries** (the server cancels them
//!    — a vanished auditor must not pin server work) while responses
//!    already queued are still delivered if the write side survives;
//! 3. **defunct** — the write side failed too (or the drain finished);
//!    the server sweeps the connection.
//!
//! All IO is non-blocking: `WouldBlock` just ends the pump, and the
//! event loop returns on its next pass.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::protocol::{decode_frame, encode_frame};

/// Bytes read from the socket per `read` call (frames reassemble across
/// calls, so this bounds only syscall granularity, not message size).
const READ_CHUNK: usize = 4096;

/// One client connection: stream, buffers, and liveness.
#[derive(Debug)]
pub(crate) struct Connection {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already flushed to the socket.
    written: usize,
    /// Set on EOF, read error, or protocol violation: no further
    /// requests will arrive. The server cancels the connection's
    /// in-flight queries but keeps draining queued responses.
    pub(crate) read_closed: bool,
    /// Set on a fatal write error: queued bytes can never flush.
    pub(crate) write_dead: bool,
    /// Queries this connection has in flight — the gauge the
    /// per-connection admission quota is enforced against.
    pub(crate) inflight: usize,
}

impl Connection {
    /// Adopt an accepted stream, switching it to non-blocking mode.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        // Responses are single small frames; Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            read_closed: false,
            write_dead: false,
            inflight: 0,
        })
    }

    /// Whether the server can sweep this connection: the write side is
    /// dead, or the read side finished and every queued byte flushed.
    pub(crate) fn defunct(&self) -> bool {
        self.write_dead || (self.read_closed && !self.wants_write())
    }

    /// Drain readable bytes and return every complete frame. Marks the
    /// read side closed on EOF, a fatal IO error, or an oversized frame
    /// (the stream cannot resynchronize after one); frames already
    /// buffered are still returned alongside.
    pub(crate) fn pump_read(&mut self, max_frame_bytes: usize) -> Vec<Vec<u8>> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.read_closed = true;
                    break;
                }
            }
        }
        let mut frames = Vec::new();
        loop {
            match decode_frame(&mut self.read_buf, max_frame_bytes) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(_) => {
                    self.read_closed = true;
                    break;
                }
            }
        }
        frames
    }

    /// Queue one frame for writing (flushed by [`Self::pump_write`]).
    pub(crate) fn queue_frame(&mut self, payload: &[u8]) {
        encode_frame(payload, &mut self.write_buf);
    }

    /// Whether queued bytes are waiting to flush.
    pub(crate) fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Flush as much of the write queue as the socket accepts. Returns
    /// `true` if any bytes moved. Marks the write side dead on a fatal
    /// IO error.
    pub(crate) fn pump_write(&mut self) -> bool {
        let mut progressed = false;
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    self.write_dead = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.write_dead = true;
                    break;
                }
            }
        }
        if self.written == self.write_buf.len() && self.written > 0 {
            self.write_buf.clear();
            self.written = 0;
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn socket_pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_stream = TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        (Connection::new(server_stream).unwrap(), client_stream)
    }

    #[test]
    fn frames_flow_both_ways_over_a_socket_pair() {
        let (mut server, client_stream) = socket_pair();
        let mut client = Connection::new(client_stream).unwrap();

        client.queue_frame(b"ping");
        while client.wants_write() {
            client.pump_write();
        }
        let frames = loop {
            let frames = server.pump_read(1 << 20);
            if !frames.is_empty() {
                break frames;
            }
        };
        assert_eq!(frames, vec![b"ping".to_vec()]);

        server.queue_frame(b"pong");
        while server.wants_write() {
            server.pump_write();
        }
        let frames = loop {
            let frames = client.pump_read(1 << 20);
            if !frames.is_empty() {
                break frames;
            }
        };
        assert_eq!(frames, vec![b"pong".to_vec()]);
        assert!(!server.defunct() && !client.defunct());
    }

    #[test]
    fn peer_drop_closes_the_connection() {
        let (mut server, client_stream) = socket_pair();
        drop(client_stream);
        // EOF may take a pass to surface; pump until it does.
        for _ in 0..100 {
            let _ = server.pump_read(1 << 20);
            if server.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(server.read_closed);
        assert!(server.defunct(), "nothing queued: sweepable immediately");
    }

    #[test]
    fn half_closed_connection_still_drains_queued_responses() {
        let (mut server, mut client_stream) = socket_pair();
        // A response is queued, then the peer half-closes its write
        // side (server-side EOF) while still reading.
        server.queue_frame(b"late answer");
        client_stream.shutdown(std::net::Shutdown::Write).unwrap();
        for _ in 0..100 {
            let _ = server.pump_read(1 << 20);
            if server.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(server.read_closed);
        assert!(
            !server.defunct(),
            "queued bytes keep a half-closed connection draining"
        );
        while server.wants_write() {
            assert!(server.pump_write() || !server.write_dead);
        }
        // The peer still receives the frame after its half-close (the
        // frame is 4 length bytes + the 11-byte payload; read exactly
        // that, since the server keeps its socket open).
        let mut wire = vec![0u8; 4 + b"late answer".len()];
        client_stream.read_exact(&mut wire).unwrap();
        let frame = decode_frame(&mut wire, 1 << 20).unwrap().unwrap();
        assert_eq!(frame, b"late answer");
        assert!(server.defunct(), "drained + read-closed: sweepable now");
    }

    #[test]
    fn oversized_frame_closes_the_connection() {
        let (mut server, mut client_stream) = socket_pair();
        let mut wire = Vec::new();
        encode_frame(&[7u8; 256], &mut wire);
        client_stream.write_all(&wire).unwrap();
        for _ in 0..100 {
            let _ = server.pump_read(16);
            if server.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(server.read_closed, "frame above the cap must close");
    }
}
