//! # relm-serve — the ReLM serving front end
//!
//! The paper frames LM validation as a *query workload*: many patterns,
//! many prefixes, repeated audits. Everything below the socket already
//! exists in this workspace — session warmth, coalesced cross-query
//! scoring, sharded compilation. This crate adds the socket: a
//! hand-rolled, dependency-free serving layer that accepts concurrent
//! TCP connections, admits each request into **one** shared
//! [`relm_core::QueryDriver`], and pumps every live query through the
//! same coalescing rotation — so scoring requests from *different
//! clients* merge into shared model batches.
//!
//! The pieces, bottom to top:
//!
//! * [`protocol`] — length-prefixed JSON-ish frames; match scores cross
//!   the wire as exact IEEE-754 bit patterns, because the serving
//!   contract is **byte-identical results**: a served query answers with
//!   precisely the matches (f64 bits included) a solo `Relm::search`
//!   produces, no matter what else is in flight or when it was admitted.
//! * [`Reactor`] / [`PollReactor`] — the waiting strategy of the event
//!   loop (readiness-by-retry here; the trait is the slot where an
//!   epoll implementation would go). Each shard owns one.
//! * [`RelmServer`] — the sharded server: an acceptor assigns each
//!   connection to one of [`ServerConfig::shards`] shard threads
//!   (connection affinity), and each shard runs its own event loop —
//!   adopt → read + admit → one driver tick → write — over its own
//!   [`relm_core::QueryDriver`]. Within a shard, concurrency comes
//!   from the *driver*: every connection's queries interleave through
//!   the same stepwise executor protocol
//!   (`step()`/`frontier_contexts()`) that `run_many` uses, which is
//!   exactly the poll interface a reactor needs. Across shards, the
//!   plan memo, scoring cache, plan store, and worker pool stay
//!   shared, so warmth is global. Backpressure is enforced at admit
//!   time (per-connection quota + global in-flight cap) with typed
//!   busy frames.
//! * [`ServeClient`] — a small blocking client (tests, benches, the
//!   `relm_client` bin).
//! * [`loadgen`] — an open-loop load harness (`relm_loadgen` bin):
//!   heavy-tailed scripted arrival traces, pipelining, disconnect
//!   storms, hostile frames, and a p50/p99/p999 + achieved-QPS report.
//!
//! # Example
//!
//! ```
//! use relm_bpe::BpeTokenizer;
//! use relm_core::Relm;
//! use relm_lm::{NGramConfig, NGramLm};
//! use relm_serve::{spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig};
//!
//! let corpus = "the cat sat on the mat. the dog sat on the log.";
//! let tokenizer = BpeTokenizer::train(corpus, 60);
//! let model = NGramLm::train(
//!     &tokenizer,
//!     &["the cat sat on the mat", "the dog sat on the log"],
//!     NGramConfig::xl(),
//! );
//! let client = Relm::builder(model, tokenizer).build().unwrap();
//! let handle = spawn(
//!     RelmServer::with_config(client, ServerConfig::new()),
//!     "127.0.0.1:0",
//! )
//! .unwrap();
//!
//! let mut peer = ServeClient::connect(handle.addr()).unwrap();
//! let request = Request::Query(QueryRequest::new(1, "the ((cat)|(dog)) sat", 2));
//! let Response::Matches { matches, .. } = peer.roundtrip(&request).unwrap() else {
//!     panic!("expected matches");
//! };
//! assert_eq!(matches.len(), 2);
//! let report = handle.stop().unwrap();
//! assert_eq!(report.completed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod conn;
pub mod loadgen;
pub mod protocol;
mod reactor;
mod server;

pub use client::ServeClient;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use protocol::{
    ProtocolError, QueryRequest, Request, Response, StrategySpec, WireMatch, WireServerStats,
    MAX_FRAME_BYTES,
};
pub use reactor::{PollReactor, Reactor};
pub use server::{spawn, RelmServer, ServerConfig, ServerHandle, ServerReport, ShardReport};
