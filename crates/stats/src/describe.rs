//! Descriptive statistics used by the bench harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n − 1 denominator); 0.0 for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Percentile by linear interpolation between closest ranks;
/// `q` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 100]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 1e-3);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }
}
