//! Statistics toolkit for ReLM-rs evaluations.
//!
//! §4.2.2 of the paper quantifies gender bias with χ² independence tests
//! over (gender × profession) contingency tables, reporting p-values from
//! 1e-18 down to 1e-229. Off-the-shelf special-function crates are outside
//! this workspace's dependency budget, so the χ² survival function is
//! implemented from scratch via the regularized incomplete gamma function
//! (series + continued-fraction evaluation, computed in log space so
//! p-values far below `f64::MIN_POSITIVE` are still reported as
//! `log10(p)`).
//!
//! Also included: empirical distributions and CDFs (Figs 7, 9, 13, 14)
//! and descriptive statistics used across the bench harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chi2;
mod describe;
mod distribution;

pub use chi2::{chi2_independence, Chi2Result};
pub use describe::{mean, percentile, std_dev};
pub use distribution::{Cdf, EmpiricalDist};

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 for positive arguments).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the *upper* regularized incomplete gamma function
/// `Q(s, x) = Γ(s, x)/Γ(s)`, the survival function of the gamma
/// distribution. Stable for very small `Q` (returns the log rather than
/// underflowing to zero).
///
/// Uses the series expansion of `P(s, x)` for `x < s + 1` and the
/// Lentz continued fraction for `Q(s, x)` otherwise (Numerical Recipes
/// §6.2, re-derived in log space).
///
/// # Panics
///
/// Panics if `s <= 0` or `x < 0`.
pub fn ln_gamma_q(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    assert!(x >= 0.0, "x must be non-negative");
    if x == 0.0 {
        return 0.0; // Q = 1
    }
    if x < s + 1.0 {
        // Q = 1 - P; P via series. P is not tiny here, so 1 - P is safe.
        let ln_p = ln_gamma_p_series(s, x);
        let p = ln_p.exp();
        if p >= 1.0 {
            return f64::NEG_INFINITY;
        }
        (1.0 - p).ln()
    } else {
        // Q via continued fraction, directly in log space.
        ln_gamma_q_cf(s, x)
    }
}

/// log P(s,x) via the power series
/// `P = x^s e^-x / Γ(s+1) · Σ xⁿ / ((s+1)…(s+n))`.
fn ln_gamma_p_series(s: f64, x: f64) -> f64 {
    let mut sum = 1.0 / s;
    let mut term = sum;
    let mut n = s;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    s * x.ln() - x - ln_gamma(s) + sum.ln()
}

/// log Q(s,x) via the Lentz continued fraction.
fn ln_gamma_q_cf(s: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    s * x.ln() - x - ln_gamma(s) + h.ln()
}

/// Survival function of the χ² distribution with `dof` degrees of
/// freedom: `P(X ≥ stat)`. Returned as `(p, log10_p)` so that p-values
/// below `f64::MIN_POSITIVE` remain reportable (the paper quotes 1e-229).
///
/// # Panics
///
/// Panics if `dof == 0` or `stat < 0`.
pub fn chi2_survival(stat: f64, dof: usize) -> (f64, f64) {
    assert!(dof > 0, "dof must be positive");
    assert!(stat >= 0.0, "statistic must be non-negative");
    let ln_q = ln_gamma_q(dof as f64 / 2.0, stat / 2.0);
    let log10_p = ln_q / std::f64::consts::LN_10;
    (ln_q.exp(), log10_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_survival_known_quantiles() {
        // For dof=1: P(X >= 3.841) ≈ 0.05; dof=2: P(X >= 5.991) ≈ 0.05.
        let (p, _) = chi2_survival(3.841, 1);
        assert!((p - 0.05).abs() < 1e-3, "dof 1: {p}");
        let (p, _) = chi2_survival(5.991, 2);
        assert!((p - 0.05).abs() < 1e-3, "dof 2: {p}");
        // dof=9, x=16.919 → 0.05
        let (p, _) = chi2_survival(16.919, 9);
        assert!((p - 0.05).abs() < 1e-3, "dof 9: {p}");
    }

    #[test]
    fn chi2_survival_extreme_statistics_stay_finite_in_log() {
        // A statistic of 1100 with dof 9 gives p ~ 1e-230 territory —
        // exactly the paper's regime.
        let (p, log10p) = chi2_survival(1100.0, 9);
        assert!(p < 1e-220, "p = {p}");
        assert!(log10p < -200.0, "log10 p = {log10p}");
        assert!(log10p.is_finite());
        // Far beyond f64 range: only the log representation survives.
        let (p2, log10p2) = chi2_survival(4000.0, 9);
        assert_eq!(p2, 0.0);
        assert!(
            log10p2 < -800.0 && log10p2.is_finite(),
            "log10 p = {log10p2}"
        );
    }

    #[test]
    fn chi2_survival_zero_statistic_is_one() {
        let (p, log10p) = chi2_survival(0.0, 5);
        assert!((p - 1.0).abs() < 1e-12);
        assert!(log10p.abs() < 1e-12);
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let mut last = f64::INFINITY;
        for stat in [0.1, 1.0, 5.0, 10.0, 50.0, 200.0] {
            let (_, log10p) = chi2_survival(stat, 4);
            assert!(log10p < last, "not monotone at {stat}");
            last = log10p;
        }
    }

    #[test]
    #[should_panic(expected = "dof")]
    fn zero_dof_rejected() {
        let _ = chi2_survival(1.0, 0);
    }
}
