//! Pearson's χ² test of independence on contingency tables.

use std::error::Error;
use std::fmt;

use crate::chi2_survival;

/// Result of a χ² independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom: `(rows − 1)(cols − 1)`.
    pub dof: usize,
    /// p-value (may underflow to 0 for extreme statistics; see
    /// [`Chi2Result::log10_p`]).
    pub p_value: f64,
    /// `log10` of the p-value, finite even when `p_value` underflows —
    /// how we compare against the paper's 1e-229.
    pub log10_p: f64,
}

impl fmt::Display for Chi2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chi2 = {:.3}, dof = {}, p ~ 1e{:.0}",
            self.statistic, self.dof, self.log10_p
        )
    }
}

/// Error for malformed contingency tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTableError(String);

impl fmt::Display for InvalidTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid contingency table: {}", self.0)
    }
}

impl Error for InvalidTableError {}

/// Pearson χ² test of independence on an `r × c` contingency table of
/// observed counts (`table[row][col]`).
///
/// For the paper's bias test the rows are genders and the columns
/// professions; a small p-value rejects independence, i.e. demonstrates
/// bias.
///
/// # Errors
///
/// Returns [`InvalidTableError`] when the table has fewer than 2 rows or
/// columns, ragged rows, or a zero row/column marginal (expected counts
/// would be zero).
///
/// # Example
///
/// ```
/// use relm_stats::chi2_independence;
///
/// // Strongly dependent: men counted in col 0, women in col 1.
/// let result = chi2_independence(&[vec![90.0, 10.0], vec![10.0, 90.0]])?;
/// assert!(result.p_value < 1e-10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn chi2_independence(table: &[Vec<f64>]) -> Result<Chi2Result, InvalidTableError> {
    let rows = table.len();
    if rows < 2 {
        return Err(InvalidTableError("need at least 2 rows".into()));
    }
    let cols = table[0].len();
    if cols < 2 {
        return Err(InvalidTableError("need at least 2 columns".into()));
    }
    if table.iter().any(|r| r.len() != cols) {
        return Err(InvalidTableError("ragged rows".into()));
    }
    if table.iter().flatten().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(InvalidTableError(
            "counts must be finite and non-negative".into(),
        ));
    }

    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..cols)
        .map(|c| table.iter().map(|r| r[c]).sum())
        .collect();
    let total: f64 = row_sums.iter().sum();
    if row_sums.contains(&0.0) || col_sums.contains(&0.0) {
        return Err(InvalidTableError("zero marginal".into()));
    }

    let mut statistic = 0.0;
    for (r, row) in table.iter().enumerate() {
        for (c, &obs) in row.iter().enumerate() {
            let expected = row_sums[r] * col_sums[c] / total;
            let diff = obs - expected;
            statistic += diff * diff / expected;
        }
    }
    let dof = (rows - 1) * (cols - 1);
    let (p_value, log10_p) = chi2_survival(statistic, dof);
    Ok(Chi2Result {
        statistic,
        dof,
        p_value,
        log10_p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_table_has_high_p() {
        // Proportional rows → statistic 0, p = 1.
        let r = chi2_independence(&[vec![10.0, 20.0], vec![20.0, 40.0]]).unwrap();
        assert!(r.statistic < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_table_has_low_p() {
        let r = chi2_independence(&[vec![90.0, 10.0], vec![10.0, 90.0]]).unwrap();
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
        assert_eq!(r.dof, 1);
    }

    #[test]
    fn known_statistic_2x2() {
        // Textbook example: [[20,30],[30,20]] → chi2 = 4.0, dof 1.
        let r = chi2_independence(&[vec![20.0, 30.0], vec![30.0, 20.0]]).unwrap();
        assert!((r.statistic - 4.0).abs() < 1e-9, "stat {}", r.statistic);
        // p ≈ 0.0455
        assert!((r.p_value - 0.0455).abs() < 1e-3);
    }

    #[test]
    fn dof_scales_with_table_shape() {
        // 2 genders × 10 professions → dof 9, the paper's setup.
        let table: Vec<Vec<f64>> = vec![
            (0..10).map(|i| 100.0 + i as f64).collect(),
            (0..10).map(|i| 100.0 - i as f64).collect(),
        ];
        let r = chi2_independence(&table).unwrap();
        assert_eq!(r.dof, 9);
    }

    #[test]
    fn extreme_bias_reports_log_p() {
        // 5000 samples per gender concentrated on opposite professions —
        // the regime where the paper reports 1e-229.
        let mut men = vec![10.0; 10];
        let mut women = vec![10.0; 10];
        men[2] = 4000.0;
        women[7] = 4000.0;
        let r = chi2_independence(&[men, women]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.log10_p < -200.0, "log10 p = {}", r.log10_p);
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(chi2_independence(&[vec![1.0, 2.0]]).is_err());
        assert!(chi2_independence(&[vec![1.0], vec![2.0]]).is_err());
        assert!(chi2_independence(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(chi2_independence(&[vec![0.0, 0.0], vec![1.0, 2.0]]).is_err());
        assert!(chi2_independence(&[vec![-1.0, 2.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn display_formats() {
        let r = chi2_independence(&[vec![90.0, 10.0], vec![10.0, 90.0]]).unwrap();
        let s = r.to_string();
        assert!(s.contains("chi2"), "{s}");
        assert!(s.contains("dof = 1"), "{s}");
    }
}
