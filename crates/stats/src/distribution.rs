//! Empirical categorical distributions and CDFs.
//!
//! The bias figures (7, 13, 14) plot `P(profession | gender)` estimated
//! from samples; Figure 9 plots the CDF of edit positions. These small
//! containers keep that bookkeeping out of the experiment code.

use std::collections::BTreeMap;

/// An empirical distribution over string-labelled categories.
///
/// # Example
///
/// ```
/// use relm_stats::EmpiricalDist;
///
/// let mut dist = EmpiricalDist::new();
/// dist.observe("art");
/// dist.observe("art");
/// dist.observe("science");
/// assert!((dist.probability("art") - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmpiricalDist {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl EmpiricalDist {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `category`.
    pub fn observe(&mut self, category: &str) {
        *self.counts.entry(category.to_owned()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `n` observations of `category`.
    pub fn observe_n(&mut self, category: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(category.to_owned()).or_insert(0) += n;
        self.total += n;
    }

    /// Raw count for `category` (0 if never seen).
    pub fn count(&self, category: &str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probability of `category`; 0.0 when the distribution is
    /// empty.
    pub fn probability(&self, category: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(category) as f64 / self.total as f64
    }

    /// Iterate `(category, count)` in lexicographic category order (so
    /// reports are deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counts for `categories`, in the given order — one row of a
    /// contingency table for [`crate::chi2_independence`].
    pub fn counts_for(&self, categories: &[&str]) -> Vec<f64> {
        categories.iter().map(|c| self.count(c) as f64).collect()
    }

    /// The mode (most frequent category), ties broken lexicographically.
    pub fn mode(&self) -> Option<&str> {
        self.counts
            .iter()
            .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then(kb.cmp(ka)))
            .map(|(k, _)| k.as_str())
    }
}

/// An empirical CDF over `f64` samples.
///
/// # Example
///
/// ```
/// use relm_stats::Cdf;
///
/// let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((cdf.at(2.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (order irrelevant; NaN values are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(samples.iter().all(|v| !v.is_nan()), "NaN sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`; 0.0 for an empty CDF.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluate the CDF at each of `points` (for plotting a curve).
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.at(x))).collect()
    }

    /// Largest absolute difference against another CDF over both sample
    /// sets (two-sample Kolmogorov–Smirnov statistic). Used to compare
    /// normalized vs unnormalized edit-position distributions (Fig 9).
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(&other.sorted) {
            d = d.max((self.at(x) - other.at(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_probabilities() {
        let mut d = EmpiricalDist::new();
        d.observe_n("art", 3);
        d.observe("science");
        assert_eq!(d.total(), 4);
        assert_eq!(d.count("art"), 3);
        assert!((d.probability("art") - 0.75).abs() < 1e-12);
        assert_eq!(d.probability("missing"), 0.0);
        assert_eq!(d.mode(), Some("art"));
    }

    #[test]
    fn counts_for_builds_contingency_row() {
        let mut d = EmpiricalDist::new();
        d.observe_n("a", 2);
        d.observe_n("c", 5);
        assert_eq!(d.counts_for(&["a", "b", "c"]), vec![2.0, 0.0, 5.0]);
    }

    #[test]
    fn iter_is_sorted() {
        let mut d = EmpiricalDist::new();
        d.observe("zebra");
        d.observe("apple");
        let keys: Vec<&str> = d.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["apple", "zebra"]);
    }

    #[test]
    fn cdf_values() {
        let cdf = Cdf::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(4.0), 1.0);
        assert_eq!(cdf.at(100.0), 1.0);
    }

    #[test]
    fn ks_distance_of_identical_is_zero() {
        let a = Cdf::from_samples(&[1.0, 2.0, 3.0]);
        let b = Cdf::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_detects_shift() {
        // Front-loaded vs uniform — the Fig 9 comparison in miniature.
        let front = Cdf::from_samples(&[0.0, 0.0, 0.0, 1.0]);
        let uniform = Cdf::from_samples(&[0.0, 1.0, 2.0, 3.0]);
        assert!(front.ks_distance(&uniform) > 0.4);
    }

    #[test]
    fn curve_evaluates_points() {
        let cdf = Cdf::from_samples(&[1.0, 2.0]);
        let c = cdf.curve(&[0.0, 1.5, 3.0]);
        assert_eq!(c, vec![(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]);
    }
}
