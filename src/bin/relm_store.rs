//! `relm_store` — manage a warm-artifact store from the command line:
//! compile once, serve everywhere.
//!
//! ```text
//! relm_store compile <DIR> [--prefix P] [--take N] [PATTERN...]
//! relm_store ls <DIR>
//! relm_store verify <DIR>
//! ```
//!
//! * `compile` trains the deterministic demonstration model shared with
//!   `relm_server` (same corpus, same tokenizer merges, same n-gram
//!   config — so the tokenizer fingerprints match and the artifacts are
//!   loadable by a serving replica), compiles each PATTERN, and writes
//!   the plans into `DIR`. With no patterns, the CI smoke set is
//!   compiled. `--prefix P` attaches a conditioning prefix to every
//!   pattern; `--take N` additionally *executes* each query for `N`
//!   matches so the execute-time artifacts (walk tables, shard indexes)
//!   materialize, then re-persists the plans with them and snapshots
//!   the scoring cache.
//! * `ls` lists the artifacts in `DIR` with their keys and sizes.
//! * `verify` decodes every artifact (checksum, structure, key) and
//!   exits nonzero if any fails.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use relm::{
    BpeTokenizer, NGramConfig, NGramLm, PlanStore, QueryString, Relm, SearchQuery, SearchStrategy,
    SessionConfig,
};

/// The deterministic demonstration corpus shared with `relm_server` and
/// `relm_client` (and the serve smoke job in CI).
const DEMO_DOCS: [&str; 4] = [
    "the cat sat on the mat",
    "the cat sat on the mat",
    "the dog sat on the log",
    "the cow ate the grass",
];

/// The patterns CI's serve smoke queries — the default compile set, so
/// a store filled by `relm_store compile` boots `relm_server` warm for
/// exactly that traffic.
const DEMO_PATTERNS: [&str; 3] = [
    "the ((cat)|(dog)) sat",
    "the cow ate",
    "the ((cat)|(cow)) ((sat)|(ate))",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: relm_store <compile|ls|verify> <DIR> [options]";
    let (cmd, dir) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(dir)) => (cmd.as_str(), dir.clone()),
        _ => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "compile" => compile(&dir, &args[2..]),
        "ls" => ls(&dir),
        "verify" => verify(&dir),
        other => {
            eprintln!("unknown command {other:?}\n{usage}");
            ExitCode::FAILURE
        }
    }
}

fn compile(dir: &str, rest: &[String]) -> ExitCode {
    let mut prefix: Option<String> = None;
    let mut take: usize = 0;
    let mut patterns: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--prefix" => match it.next() {
                Some(p) => prefix = Some(p.clone()),
                None => {
                    eprintln!("--prefix takes a pattern");
                    return ExitCode::FAILURE;
                }
            },
            "--take" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => take = n,
                None => {
                    eprintln!("--take takes a number");
                    return ExitCode::FAILURE;
                }
            },
            other => patterns.push(other.to_string()),
        }
    }
    if patterns.is_empty() {
        patterns = DEMO_PATTERNS.iter().map(|p| p.to_string()).collect();
    }

    let corpus = DEMO_DOCS.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 80);
    let model = NGramLm::train(&tokenizer, &DEMO_DOCS, NGramConfig::xl());
    let client = match Relm::builder(model, tokenizer)
        .config(SessionConfig::new().with_plan_store(dir))
        .build()
    {
        Ok(client) => client,
        Err(e) => {
            eprintln!("building demo session: {e}");
            return ExitCode::FAILURE;
        }
    };

    for pattern in &patterns {
        let mut query_string = QueryString::new(pattern);
        if let Some(p) = &prefix {
            query_string = query_string.with_prefix(p);
        }
        let mut query = SearchQuery::new(query_string);
        if take > 0 && prefix.is_some() {
            // A prefixed sampling execute is what materializes the walk
            // table — the artifact worth shipping warm.
            query = query.with_strategy(SearchStrategy::RandomSampling { seed: 7 });
        }
        match client.plan(&query) {
            Ok(_) => {
                if take > 0 {
                    match client.search(&query) {
                        Ok(results) => {
                            let n = results.take(take).count();
                            println!("compiled + executed ({n} matches): {pattern}");
                        }
                        Err(e) => {
                            eprintln!("execute failed for {pattern:?}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    println!("compiled: {pattern}");
                }
            }
            Err(e) => {
                eprintln!("compile failed for {pattern:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if take > 0 {
        let persisted = client
            .persist_plans()
            .and_then(|p| client.save_scoring_cache().map(|c| (p, c)));
        match persisted {
            Ok((plan_bytes, cache_bytes)) => println!(
                "persisted warm artifacts: {plan_bytes} plan bytes, {cache_bytes} cache bytes"
            ),
            Err(e) => {
                eprintln!("persisting warm artifacts: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = client.stats();
    println!(
        "relm_store compile done: {} plans, {} bytes written to {dir}",
        stats.plan_misses, stats.store_bytes_written
    );
    ExitCode::SUCCESS
}

fn ls(dir: &str) -> ExitCode {
    let store = match PlanStore::open(dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open store {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match store.plan_files() {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot list store {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for path in &files {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        match PlanStore::read_plan_file(path) {
            Ok(artifact) => {
                let key = &artifact.key;
                let prefix = key.prefix.as_deref().unwrap_or("-");
                println!(
                    "{name}  {bytes}B  tokenizer={:016x}  tokenization={}  prefix={prefix:?}  \
                     pattern={:?}{}",
                    key.tokenizer,
                    key.tokenization,
                    key.pattern,
                    if artifact.walk_table.is_some() {
                        "  [walk table]"
                    } else {
                        ""
                    },
                );
            }
            Err(e) => println!("{name}  {bytes}B  UNREADABLE: {e}"),
        }
    }
    println!("{} plan artifacts in {dir}", files.len());
    ExitCode::SUCCESS
}

fn verify(dir: &str) -> ExitCode {
    let store = match PlanStore::open(dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open store {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match store.plan_files() {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot list store {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for path in &files {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match PlanStore::read_plan_file(path) {
            Ok(artifact) => println!("ok    {name}  pattern={:?}", artifact.key.pattern),
            Err(e) => {
                failures += 1;
                println!("FAIL  {name}  {e}");
            }
        }
    }
    match store.load_cache() {
        Ok(Some(cache)) => println!(
            "ok    scoring-cache.relm  generation={} entries={}",
            cache.generation,
            cache.entries.len()
        ),
        Ok(None) => {}
        Err(e) => {
            failures += 1;
            println!("FAIL  scoring-cache.relm  {e}");
        }
    }
    if failures > 0 {
        eprintln!("{failures} corrupt artifact(s) in {dir}");
        return ExitCode::FAILURE;
    }
    println!("all {} plan artifacts verify clean", files.len());
    ExitCode::SUCCESS
}
