//! # ReLM-rs — validating large language models with regular expressions
//!
//! A from-scratch Rust reproduction of *"Validating Large Language Models
//! with ReLM"* (Kuchnik, Smith & Amvrosiadis, MLSys 2023). ReLM turns LLM
//! validation tasks — memorization, bias, toxicity, language
//! understanding — into **regular-expression queries** executed directly
//! against the model's decoding process.
//!
//! This crate is the facade: it re-exports the public API of the
//! workspace's subsystem crates. See `README.md` for the architecture
//! tour and `DESIGN.md` for the paper-to-module mapping.
//!
//! The entry point is the [`Relm`] client — it owns the model,
//! tokenizer, compiled-plan memo, and shared scoring cache, and serves
//! single queries ([`Relm::search`]) as well as whole query sets
//! ([`Relm::run_many`], which coalesces scoring *across* the queries).
//!
//! ```
//! use relm::{
//!     BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, QueryString, Relm, SearchQuery,
//! };
//!
//! let corpus = "the cat sat on the mat. the dog sat on the log.";
//! let tokenizer = BpeTokenizer::train(corpus, 60);
//! let model = NGramLm::train(
//!     &tokenizer,
//!     &["the cat sat on the mat", "the dog sat on the log"],
//!     NGramConfig::xl(),
//! );
//! let client = Relm::builder(model, tokenizer).build()?;
//! let query = SearchQuery::new(
//!     QueryString::new("the ((cat)|(dog)) sat").with_prefix("the "),
//! )
//! .with_policy(DecodingPolicy::top_k(40));
//! let texts: Vec<String> = client.search(&query)?
//!     .take(2)
//!     .map(|m| m.text)
//!     .collect();
//! assert_eq!(texts.len(), 2);
//! # Ok::<(), relm::RelmError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use relm_automata::{
    ascii_alphabet, byte_alphabet, concat, dfa_to_dot, levenshtein_within, nfa_to_dot,
    prefix_closure, reverse, str_symbols, symbols_to_string, Dfa, Fst, Nfa, Parallelism,
    ShardIndex, ShardedDfa, StateId, Symbol, WalkChoice, WalkTable, WorkerPool,
};
pub use relm_bpe::{pretokenize, BpeTokenizer, TokenId};
pub use relm_core::{
    compiler, explain, CompiledSearch, ExecutionStats, FilterPreprocessor, LevenshteinPreprocessor,
    MachineShape, MatchResult, PlanSource, PrefixSampling, Preprocessor, QueryCompletion,
    QueryDriver, QueryId, QueryOutcome, QueryPlan, QuerySet, QuerySetReport, QuerySpec,
    QueryString, Relm, RelmBuilder, RelmError, RelmErrorKind, RelmSession, SearchQuery,
    SearchResults, SearchStrategy, SessionConfig, SessionStats, Speculation, TickQuantum,
    TokenizationStrategy,
};
#[allow(deprecated)] // the legacy one-shot shims remain exported until removal
pub use relm_core::{execute, plan, search};
pub use relm_lm::{
    fan_out_scores, perplexity, pooled_scores, sample_sequence, score_batch, sequence_log_prob,
    top_k_accuracy, AcceleratorSim, CachedLm, DecodingPolicy, ForwardKernel, LanguageModel,
    NGramConfig, NGramLm, NeuralLm, NeuralLmConfig, ScoringEngine, ScoringMode, ScoringStats,
    SharedCacheStats, SharedScoringCache,
};
pub use relm_regex::{disjunction_of, escape, Regex};
pub use relm_store::{
    ArtifactKey, CacheArtifact, PlanArtifact, PlanStore, StoreError, FORMAT_VERSION,
};

/// The serving front end: a dependency-free TCP protocol server pumping
/// concurrent connections' queries through one coalescing
/// [`QueryDriver`] (`RelmServer`, `ServeClient`, the wire protocol).
pub mod serve {
    pub use relm_serve::*;
}

/// Dataset substrates (synthetic corpus, URL world, Pile shard, cloze
/// set, stop words).
pub mod datasets {
    pub use relm_datasets::*;
}

/// Statistics toolkit (χ² tests, empirical distributions, CDFs).
pub mod stats {
    pub use relm_stats::*;
}
