//! Integration tests for the `Relm` client — the redesigned public
//! entry point. Two invariants are enforced **bit-for-bit** (including
//! the f64 score bits):
//!
//! 1. `Relm::search` produces results byte-identical to the legacy
//!    `search()` free function and to `RelmSession::search`, for all
//!    three executor types;
//! 2. `Relm::run_many` produces, per query, results byte-identical to
//!    running the same queries sequentially — even under scoring-cache
//!    eviction pressure and across model swaps — while its shared
//!    engine records cross-query coalesced batches that sequential
//!    execution can never produce.

#![forbid(unsafe_code)]
// The deprecated one-shot shims are the reference path under test.
#![allow(deprecated)]

use relm::{
    search, BpeTokenizer, DecodingPolicy, LanguageModel, MatchResult, NGramConfig, NGramLm,
    QuerySet, QueryString, Relm, RelmSession, SearchQuery, SearchStrategy, SessionConfig,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
        "my phone number is 555 555 5555",
        "my phone number is 555 867 5309",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

/// Exact comparison including the f64 score bits: "byte-identical".
fn assert_identical(a: &[MatchResult], b: &[MatchResult], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.tokens, y.tokens, "{label}: tokens differ");
        assert_eq!(x.text, y.text, "{label}: text differs");
        assert_eq!(x.prefix_len, y.prefix_len, "{label}: prefix_len differs");
        assert_eq!(x.canonical, y.canonical, "{label}: canonical differs");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "{label}: log_prob bits differ ({} vs {})",
            x.log_prob,
            y.log_prob
        );
    }
}

fn strategies() -> [(&'static str, SearchStrategy); 3] {
    [
        ("dijkstra", SearchStrategy::ShortestPath),
        ("beam", SearchStrategy::Beam { width: 16 }),
        ("sampling", SearchStrategy::RandomSampling { seed: 41 }),
    ]
}

fn mixed_set() -> QuerySet {
    let mut set = QuerySet::new();
    // Fig5-style structured extraction (Dijkstra).
    set.push(
        SearchQuery::new(
            QueryString::new("my phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})")
                .with_prefix("my phone number is"),
        )
        .with_policy(DecodingPolicy::top_k(40)),
        3,
    );
    // Fig7-style template sampling.
    set.push(
        SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_strategy(SearchStrategy::RandomSampling { seed: 9 }),
        8,
    );
    // Beam over the same family plus a distinct pattern.
    set.push(
        SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_strategy(SearchStrategy::Beam { width: 16 }),
        4,
    );
    set.push(
        SearchQuery::new(QueryString::new("the cow ate the grass")),
        1,
    );
    set
}

/// Sequential ground truth for a set: each query alone via take(n).
fn run_sequentially<M: relm::LanguageModel>(
    client: &Relm<M>,
    set: &QuerySet,
) -> Vec<Vec<MatchResult>> {
    set.specs()
        .iter()
        .map(|spec| {
            client
                .search(&spec.query)
                .unwrap()
                .take(spec.max_results)
                .collect()
        })
        .collect()
}

#[test]
fn client_search_is_byte_identical_to_legacy_and_session() {
    let (tok, lm) = fixture();
    let client = Relm::new(&lm, tok.clone()).unwrap();
    let session = RelmSession::new(&lm, tok.clone());
    for (label, strategy) in strategies() {
        let query = SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_strategy(strategy);
        let legacy: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(10).collect();
        let via_session: Vec<MatchResult> = session.search(&query).unwrap().take(10).collect();
        let via_client: Vec<MatchResult> = client.search(&query).unwrap().take(10).collect();
        // And a warm client pass (plan memo + scoring cache now hot).
        let warm: Vec<MatchResult> = client.search(&query).unwrap().take(10).collect();
        assert!(!legacy.is_empty(), "{label}: fixture must produce matches");
        assert_identical(&legacy, &via_session, &format!("{label} legacy-vs-session"));
        assert_identical(&legacy, &via_client, &format!("{label} legacy-vs-client"));
        assert_identical(&legacy, &warm, &format!("{label} legacy-vs-warm-client"));
    }
    assert!(client.stats().plan_hits > 0, "client memoized the plan");
}

#[test]
fn run_many_is_byte_identical_to_sequential_per_query() {
    let (tok, lm) = fixture();
    let set = mixed_set();
    // Sequential ground truth on one fresh client...
    let sequential_client = Relm::new(&lm, tok.clone()).unwrap();
    let expected = run_sequentially(&sequential_client, &set);
    // ...vs the coalescing driver on another fresh client.
    let client = Relm::new(&lm, tok).unwrap();
    let report = client.run_many(&set).unwrap();
    assert_eq!(report.outcomes.len(), set.len());
    for (i, (outcome, exp)) in report.outcomes.iter().zip(&expected).enumerate() {
        assert_identical(&outcome.matches, exp, &format!("query {i}"));
    }
    // The whole point: scoring was shared across queries.
    assert!(
        report.scoring.cross_query_batches > 0,
        "expected cross-query shared batches: {:?}",
        report.scoring
    );
    assert!(report.scoring.mean_batch_size() >= 1.0);
}

#[test]
fn run_many_is_byte_identical_under_eviction_pressure() {
    let (tok, lm) = fixture();
    let set = mixed_set();
    let expected = run_sequentially(&Relm::new(&lm, tok.clone()).unwrap(), &set);
    // A scoring cache so small that eviction churns constantly (one
    // distribution is vocab_size * 8 bytes), plus a tiny plan memo.
    let tiny = SessionConfig::new()
        .with_scoring_cache_bytes((lm.vocab_size() * 8 + 256) * 4)
        .with_plan_memo_capacity(2);
    let client = Relm::builder(&lm, tok).config(tiny).build().unwrap();
    for round in 0..3 {
        let report = client.run_many(&set).unwrap();
        for (i, (outcome, exp)) in report.outcomes.iter().zip(&expected).enumerate() {
            assert_identical(&outcome.matches, exp, &format!("round {round} query {i}"));
        }
    }
    let stats = client.stats();
    assert!(
        stats.scoring.evictions > 0,
        "the tiny budget must force evictions: {stats:?}"
    );
}

#[test]
fn run_many_is_byte_identical_across_model_swaps() {
    let (tok, _) = fixture();
    let cat_docs = ["the cat sat on the mat", "the cat sat on the mat"];
    let dog_docs = ["the dog sat on the log", "the dog sat on the log"];
    let cat_lm = NGramLm::train(&tok, &cat_docs, NGramConfig::xl());
    let dog_lm = NGramLm::train(&tok, &dog_docs, NGramConfig::xl());
    let mut set = QuerySet::new();
    set.push(
        SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat").with_prefix("the")),
        2,
    );
    set.push(
        SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat").with_prefix("the"))
            .with_strategy(SearchStrategy::RandomSampling { seed: 3 }),
        5,
    );

    let mut client = Relm::new(&cat_lm, tok.clone()).unwrap();
    let before = client.run_many(&set).unwrap();
    let expected_cat = run_sequentially(&Relm::new(&cat_lm, tok.clone()).unwrap(), &set);
    for (outcome, exp) in before.outcomes.iter().zip(&expected_cat) {
        assert_identical(&outcome.matches, exp, "pre-swap");
    }

    // Swap to the dog model: the generation bump must prevent any
    // cat-model distribution from leaking into the new run.
    client.swap_model(&dog_lm).unwrap();
    let after = client.run_many(&set).unwrap();
    let expected_dog = run_sequentially(&Relm::new(&dog_lm, tok).unwrap(), &set);
    for (outcome, exp) in after.outcomes.iter().zip(&expected_dog) {
        assert_identical(&outcome.matches, exp, "post-swap");
    }
    assert_eq!(after.outcomes[0].matches[0].text, "the dog sat");
    assert_eq!(before.outcomes[0].matches[0].text, "the cat sat");
}

#[test]
fn run_many_with_serial_queries_matches_sequential() {
    use relm::ScoringMode;
    let (tok, lm) = fixture();
    let mut set = mixed_set();
    set.push(
        SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat"))
            .with_scoring_mode(ScoringMode::Serial),
        2,
    );
    let expected = run_sequentially(&Relm::new(&lm, tok.clone()).unwrap(), &set);
    let report = Relm::new(&lm, tok).unwrap().run_many(&set).unwrap();
    for (i, (outcome, exp)) in report.outcomes.iter().zip(&expected).enumerate() {
        assert_identical(&outcome.matches, exp, &format!("query {i}"));
    }
}
