//! The speculative-scoring contract: speculation must be invisible in
//! every output, and visible only in the counters.
//!
//! * speculative and non-speculative sampling are **byte-identical**
//!   (f64 bits) — solo, under the coalescing `run_many` driver, and
//!   over the TCP serving path at `Parallelism::sharded(4)`;
//! * the deterministic executors are untouched by the knob;
//! * proptests sweep speculation depth × top-K × seeds;
//! * on a predictable workload the lookahead actually lands
//!   (`speculation_hits > 0`); on a trivially cheap high-entropy model
//!   the adaptive throttle disengages instead of scoring garbage.

#![forbid(unsafe_code)]

use std::collections::HashMap;

use proptest::prelude::*;
use relm::serve::{spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig};
use relm::{
    BpeTokenizer, DecodingPolicy, MatchResult, NGramConfig, NGramLm, Parallelism, QuerySet,
    QueryString, Relm, SearchQuery, SearchStrategy, Speculation,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "see https://www.example.com/articles today",
        "see https://www.example.com/articles today",
        "see https://www.example.org/posts now",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

fn url_query() -> SearchQuery {
    SearchQuery::new(QueryString::new("https://www\\.([a-z]|\\.|/)+").with_prefix("https://www\\."))
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(16)
        .with_max_expansions(3_000)
}

fn sampling_query(seed: u64) -> SearchQuery {
    url_query().with_strategy(SearchStrategy::RandomSampling { seed })
}

fn client<'a>(lm: &'a NGramLm, tok: &BpeTokenizer, spec: Speculation) -> Relm<&'a NGramLm> {
    Relm::builder(lm, tok.clone())
        .speculation(spec)
        .build()
        .unwrap()
}

fn assert_bit_identical(label: &str, a: &[MatchResult], b: &[MatchResult]) {
    assert_eq!(a.len(), b.len(), "{label}: match counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.text, y.text, "{label}[{i}]: text");
        assert_eq!(x.tokens, y.tokens, "{label}[{i}]: tokens");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "{label}[{i}]: log_prob bits"
        );
    }
}

#[test]
fn speculative_and_plain_clients_are_byte_identical_for_all_executors() {
    let (tok, lm) = fixture();
    let off = client(&lm, &tok, Speculation::off());
    let on = client(&lm, &tok, Speculation::new());
    let aggressive = client(&lm, &tok, Speculation::new().with_top_k(8).with_depth(3));
    for (label, query, take) in [
        ("dijkstra", url_query(), 5),
        (
            "beam16",
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            5,
        ),
        ("sampling", sampling_query(13), 8),
        ("sampling_seed7", sampling_query(7), 8),
    ] {
        let a: Vec<MatchResult> = off.search(&query).unwrap().take(take).collect();
        let b: Vec<MatchResult> = on.search(&query).unwrap().take(take).collect();
        let c: Vec<MatchResult> = aggressive.search(&query).unwrap().take(take).collect();
        assert!(!a.is_empty(), "{label}: no matches");
        assert_bit_identical(label, &a, &b);
        assert_bit_identical(&format!("{label} aggressive"), &a, &c);
    }
}

#[test]
fn speculation_under_run_many_is_byte_identical_and_observable() {
    let (tok, lm) = fixture();
    let off = client(&lm, &tok, Speculation::off());
    let on = client(&lm, &tok, Speculation::new().with_top_k(8));
    // A mixed set: several sampling walks plus a deterministic query, so
    // the driver's slack fill has other queries' walks to draw from.
    let set = QuerySet::new()
        .with_query(sampling_query(11), 6)
        .with_query(sampling_query(29), 6)
        .with_query(url_query(), 4)
        .with_query(
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            4,
        );
    let a = off.run_many(&set).unwrap();
    let b = on.run_many(&set).unwrap();
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_bit_identical(&format!("run_many[{i}]"), &x.matches, &y.matches);
    }
    // Observability: the speculative run issued lookahead work, some of
    // it landed, and the ledger is consistent; the plain run is silent.
    let spec_total: u64 = b.outcomes.iter().map(|o| o.stats.speculative_scored).sum();
    let hit_total: u64 = b.outcomes.iter().map(|o| o.stats.speculation_hits).sum();
    let wasted_total: u64 = b.outcomes.iter().map(|o| o.stats.speculation_wasted).sum();
    assert!(spec_total > 0, "speculation never engaged");
    assert!(hit_total > 0, "no speculative guess ever landed");
    assert_eq!(wasted_total, spec_total - hit_total);
    assert!(
        b.scoring.speculative_batches > 0,
        "no batch was attributed to speculation: {:?}",
        b.scoring
    );
    let off_total: u64 = a.outcomes.iter().map(|o| o.stats.speculative_scored).sum();
    assert_eq!(off_total, 0, "Speculation::off() must be silent");
    assert_eq!(a.scoring.speculative_batches, 0);
}

#[test]
fn served_path_with_speculation_is_byte_identical_to_solo_plain() {
    let (tok, lm) = fixture();
    let solo = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::Serial)
        .speculation(Speculation::off())
        .build()
        .unwrap();
    let (tok2, lm2) = fixture();
    let speculative = Relm::builder(lm2, tok2)
        .parallelism(Parallelism::sharded(4))
        .speculation(Speculation::new().with_top_k(8).with_depth(2))
        .build()
        .unwrap();
    let handle = spawn(
        RelmServer::with_config(speculative, ServerConfig::new()),
        "127.0.0.1:0",
    )
    .unwrap();
    let requests = vec![
        QueryRequest::new(0, "https://www\\.([a-z]|\\.|/)+", 4),
        QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 4)
            .with_strategy(relm::serve::StrategySpec::Sampling { seed: 5 })
            .with_max_tokens(16),
        QueryRequest::new(2, "https://www\\.([a-z]|\\.|/)+", 4)
            .with_strategy(relm::serve::StrategySpec::Sampling { seed: 41 })
            .with_max_tokens(16),
    ];
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    for request in &requests {
        client.send(&Request::Query(request.clone())).unwrap();
    }
    let mut served: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for _ in 0..requests.len() {
        let response = client.recv().unwrap();
        let Response::Matches { id, matches, .. } = &response else {
            panic!("expected matches, got {response:?}");
        };
        served.insert(
            *id,
            matches
                .iter()
                .map(|m| (m.text.clone(), m.score_bits))
                .collect(),
        );
    }
    for request in &requests {
        let expected: Vec<(String, u64)> = solo
            .search(&request.to_search_query())
            .unwrap()
            .take(request.max_results)
            .map(|m| (m.text, m.log_prob.to_bits()))
            .collect();
        assert_eq!(
            served.remove(&request.id).unwrap(),
            expected,
            "served-vs-solo for {request:?}"
        );
    }
    handle.stop().unwrap();
}

#[test]
fn speculation_hits_on_a_predictable_walk() {
    let (tok, lm) = fixture();
    let on = client(&lm, &tok, Speculation::new());
    let mut results = on.search(&sampling_query(3)).unwrap();
    let n = (&mut results).take(8).count();
    assert_eq!(n, 8);
    let stats = results.stats();
    assert!(stats.speculative_scored > 0, "speculation never engaged");
    assert!(
        stats.speculation_hits > 0,
        "URL walks are narrow; lookahead should land: {stats:?}"
    );
    assert_eq!(
        stats.speculation_wasted,
        stats.speculative_scored - stats.speculation_hits
    );
}

/// A trivially cheap, maximum-entropy model: every token equally likely
/// in every context. Nothing about the walk is predictable, so
/// speculative guesses land at chance rate — the workload the adaptive
/// throttle exists for.
#[derive(Clone, Debug)]
struct UniformLm {
    vocab: usize,
    eos: relm::TokenId,
}

impl relm::LanguageModel for UniformLm {
    fn vocab_size(&self) -> usize {
        self.vocab
    }
    fn eos(&self) -> relm::TokenId {
        self.eos
    }
    fn max_sequence_len(&self) -> usize {
        64
    }
    fn next_log_probs(&self, _context: &[relm::TokenId]) -> Vec<f64> {
        vec![-(self.vocab as f64).ln(); self.vocab]
    }
}

#[test]
fn throttle_disengages_on_a_trivially_cheap_high_entropy_model() {
    // The walk draws uniformly over ~26 out-edges, so top-2 guesses
    // land ~8% of the time — decisively below the default 25% floor.
    // The throttled run must stop speculating after warmup; the
    // unthrottled control keeps issuing lookahead forever.
    let letters: String = ('a'..='z').collect();
    let tok = BpeTokenizer::train(&letters, 30);
    let lm = UniformLm {
        vocab: tok.vocab_size(),
        eos: tok.eos(),
    };
    let query = SearchQuery::new(QueryString::new("([a-z])+"))
        .with_max_tokens(24)
        .with_strategy(SearchStrategy::RandomSampling { seed: 17 });
    let run = |spec: Speculation| {
        let c = Relm::builder(lm.clone(), tok.clone())
            .speculation(spec)
            .build()
            .unwrap();
        let mut results = c.search(&query).unwrap();
        let got = (&mut results).take(20).count();
        assert!(got > 0, "no samples drawn");
        results.stats()
    };
    let throttled = run(Speculation::new().with_top_k(2));
    let unthrottled = run(Speculation::new().with_top_k(2).with_throttle(u64::MAX, 1));
    assert!(
        throttled.expansions > 100,
        "fixture too small: {throttled:?}"
    );
    assert!(
        throttled.speculative_scored < unthrottled.speculative_scored / 2,
        "throttle never disengaged: {} vs unthrottled {}",
        throttled.speculative_scored,
        unthrottled.speculative_scored
    );
    assert!(
        throttled.speculative_scored < throttled.expansions / 2,
        "throttled run kept speculating: {throttled:?}"
    );
    // Byte-identity holds regardless of the throttle's decisions.
    let plain = Relm::builder(lm.clone(), tok.clone())
        .speculation(Speculation::off())
        .build()
        .unwrap();
    let speculative = Relm::builder(lm.clone(), tok.clone())
        .speculation(Speculation::new())
        .build()
        .unwrap();
    let a: Vec<MatchResult> = plain.search(&query).unwrap().take(10).collect();
    let b: Vec<MatchResult> = speculative.search(&query).unwrap().take(10).collect();
    assert_bit_identical("high-entropy sampling", &a, &b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random speculation depth × top-K × seed: the sampled stream is
    /// byte-identical to the non-speculative reference.
    #[test]
    fn proptest_speculation_is_invisible(
        depth in 0usize..3,
        top_k in 0usize..6,
        seed in 0u64..512,
    ) {
        let (tok, lm) = fixture();
        let spec = Speculation::new().with_depth(depth).with_top_k(top_k);
        let a: Vec<MatchResult> = client(&lm, &tok, Speculation::off())
            .search(&sampling_query(seed))
            .unwrap()
            .take(6)
            .collect();
        let b: Vec<MatchResult> = client(&lm, &tok, spec)
            .search(&sampling_query(seed))
            .unwrap()
            .take(6)
            .collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(&x.tokens, &y.tokens);
            prop_assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
        }
    }
}
