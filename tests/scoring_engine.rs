//! Integration tests for the batched scoring path: every executor must
//! produce **byte-identical results in identical order** whether it
//! scores through the batched, cache-aware `ScoringEngine` or through
//! the serial reference path (one uncached model call per context), and
//! the engine's counters must surface in `ExecutionStats` so benchmarks
//! have a cost model.

#![forbid(unsafe_code)]
// The deprecated one-shot shims are the reference path under test.
#![allow(deprecated)]

use relm::{
    search, BpeTokenizer, DecodingPolicy, MatchResult, NGramConfig, NGramLm, QueryString,
    ScoringMode, SearchQuery, SearchStrategy,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
        "my phone number is 555 555 5555",
        "my phone number is 555 867 5309",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

/// Run `query` in both scoring modes and return (batched, serial)
/// results plus the batched run's stats.
fn both_modes(
    tok: &BpeTokenizer,
    lm: &NGramLm,
    query: &SearchQuery,
    take: usize,
) -> (Vec<MatchResult>, Vec<MatchResult>, relm::ExecutionStats) {
    let mut batched_iter = search(
        lm,
        tok,
        &query.clone().with_scoring_mode(ScoringMode::Batched),
    )
    .expect("batched search");
    let batched: Vec<MatchResult> = (&mut batched_iter).take(take).collect();
    let stats = batched_iter.stats();
    let serial: Vec<MatchResult> = search(
        lm,
        tok,
        &query.clone().with_scoring_mode(ScoringMode::Serial),
    )
    .expect("serial search")
    .take(take)
    .collect();
    (batched, serial, stats)
}

#[test]
fn shortest_path_batched_is_byte_identical_to_serial() {
    let (tok, lm) = fixture();
    let query = SearchQuery::new(
        QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
    )
    .with_policy(DecodingPolicy::top_k(40));
    let (batched, serial, stats) = both_modes(&tok, &lm, &query, 10);
    assert!(!batched.is_empty());
    assert_eq!(batched, serial, "results must match exactly, in order");
    assert!(
        stats.batches > 0,
        "frontier batching must engage: {stats:?}"
    );
    assert!(stats.cache_hits > 0, "prefetched contexts must be reused");
}

#[test]
fn beam_batched_is_byte_identical_to_serial() {
    let (tok, lm) = fixture();
    let query = SearchQuery::new(
        QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
    )
    .with_strategy(SearchStrategy::Beam { width: 16 });
    let (batched, serial, stats) = both_modes(&tok, &lm, &query, 10);
    assert!(!batched.is_empty());
    assert_eq!(batched, serial);
    assert!(stats.batches > 0, "{stats:?}");
    assert!(
        stats.batched_contexts >= stats.batches,
        "each batch holds at least one context: {stats:?}"
    );
}

#[test]
fn sampling_batched_is_byte_identical_to_serial() {
    let (tok, lm) = fixture();
    let query = SearchQuery::new(
        QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
    )
    .with_strategy(SearchStrategy::RandomSampling { seed: 41 });
    let (batched, serial, stats) = both_modes(&tok, &lm, &query, 25);
    assert!(!batched.is_empty());
    assert_eq!(
        batched, serial,
        "the RNG stream must not depend on the scoring mode"
    );
    assert!(stats.batches > 0, "{stats:?}");
    assert!(
        stats.cache_hits > 0,
        "episodes share prefixes; the walk must hit the memo table: {stats:?}"
    );
}

#[test]
fn quickstart_query_reports_batching_and_cache_hits() {
    // The acceptance query: the crate-level quickstart (phone-number
    // extraction) must show the batched cost model in its stats.
    let (tok, lm) = fixture();
    let query = SearchQuery::new(
        QueryString::new("my phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})")
            .with_prefix("my phone number is"),
    )
    .with_policy(DecodingPolicy::top_k(40));
    let mut results = search(&lm, &tok, &query).expect("search");
    let first = (&mut results).take(1).next().expect("a match");
    assert!(first.text.starts_with("my phone number is "));
    let stats = results.stats();
    assert!(stats.batches > 0, "{stats:?}");
    assert!(stats.cache_hits > 0, "{stats:?}");
    assert!(stats.cache_misses > 0, "{stats:?}");
    assert_eq!(
        stats.batched_contexts, stats.cache_misses,
        "every miss is evaluated in exactly one batch: {stats:?}"
    );
}

#[test]
fn serial_mode_reports_no_batching() {
    let (tok, lm) = fixture();
    let query = SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat"))
        .with_scoring_mode(ScoringMode::Serial);
    let mut results = search(&lm, &tok, &query).expect("search");
    let n = (&mut results).take(2).count();
    assert_eq!(n, 2);
    let stats = results.stats();
    assert_eq!(stats.batches, 0, "{stats:?}");
    assert_eq!(stats.cache_hits, 0, "{stats:?}");
    assert!(stats.cache_misses > 0, "serial work is still counted");
}

#[test]
fn batched_mode_does_strictly_less_model_work() {
    // The systems claim: caching + dedup means the batched path
    // evaluates fewer distinct contexts than the serial path's raw call
    // count, on a traversal that revisits prefixes.
    let (tok, lm) = fixture();
    let query = SearchQuery::new(
        QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
    );
    let (batched, serial, _) = both_modes(&tok, &lm, &query, 6);
    assert_eq!(batched, serial);

    let mut batched_iter = search(&lm, &tok, &query).expect("search");
    let _ = (&mut batched_iter).take(6).count();
    let b = batched_iter.stats();
    let mut serial_iter = search(
        &lm,
        &tok,
        &query.clone().with_scoring_mode(ScoringMode::Serial),
    )
    .expect("search");
    let _ = (&mut serial_iter).take(6).count();
    let s = serial_iter.stats();
    assert!(
        b.cache_misses < s.cache_misses,
        "batched misses {} should undercut serial evaluations {}",
        b.cache_misses,
        s.cache_misses
    );
}
