//! The same ReLM queries executed over two *different model families* —
//! the count-based n-gram and the from-scratch neural LM — demonstrating
//! that the engine is model-agnostic (the paper's planned extension,
//! §6), plus the beam-search traversal added on top of the paper's two.

#![forbid(unsafe_code)]

use relm::{
    BpeTokenizer, DecodingPolicy, LanguageModel, NGramConfig, NGramLm, NeuralLm, NeuralLmConfig,
    QueryString, Regex, Relm, SearchQuery, SearchStrategy,
};

fn corpus() -> (BpeTokenizer, Vec<&'static str>) {
    let docs = vec![
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
    ];
    let tok = BpeTokenizer::train("the cat sat on the mat. the dog sat on the log.", 60);
    (tok, docs)
}

fn run_query<M: LanguageModel>(
    model: &M,
    tok: &BpeTokenizer,
    strategy: SearchStrategy,
) -> Vec<String> {
    let query = SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat"))
        .with_strategy(strategy)
        .with_policy(DecodingPolicy::top_k(1000));
    Relm::new(model, tok.clone())
        .unwrap()
        .search(&query)
        .unwrap()
        .take(4)
        .map(|m| m.text)
        .collect()
}

#[test]
fn ngram_and_neural_agree_on_the_dominant_string() {
    let (tok, docs) = corpus();
    let ngram = NGramLm::train(&tok, &docs, NGramConfig::xl());
    let neural = NeuralLm::train(
        &tok,
        &docs,
        NeuralLmConfig {
            epochs: 25,
            ..NeuralLmConfig::default()
        },
    );
    let from_ngram = run_query(&ngram, &tok, SearchStrategy::ShortestPath);
    let from_neural = run_query(&neural, &tok, SearchStrategy::ShortestPath);
    // Both model families must rank the 3x-repeated sentence first.
    assert_eq!(from_ngram[0], "the cat sat");
    assert_eq!(
        from_neural[0], "the cat sat",
        "neural LM should memorize the dominant string"
    );
}

#[test]
fn all_three_traversals_work_on_the_neural_model() {
    let (tok, docs) = corpus();
    let neural = NeuralLm::train(&tok, &docs, NeuralLmConfig::default());
    let re = Regex::compile("the ((cat)|(dog)) sat").unwrap();
    for strategy in [
        SearchStrategy::ShortestPath,
        SearchStrategy::Beam { width: 8 },
        SearchStrategy::RandomSampling { seed: 3 },
    ] {
        let results = run_query(&neural, &tok, strategy);
        assert!(!results.is_empty(), "{strategy:?} found nothing");
        for t in &results {
            assert!(re.is_match(t), "{strategy:?} emitted {t:?}");
        }
    }
}

#[test]
fn cached_wrapper_composes_with_neural_model() {
    let (tok, docs) = corpus();
    let neural = relm::CachedLm::new(NeuralLm::train(&tok, &docs, NeuralLmConfig::default()));
    let results = run_query(&neural, &tok, SearchStrategy::ShortestPath);
    assert!(!results.is_empty());
    assert!(neural.cache_len() > 0, "search should populate the cache");
}

#[test]
fn beam_and_dijkstra_agree_at_large_width() {
    let (tok, docs) = corpus();
    let ngram = NGramLm::train(&tok, &docs, NGramConfig::xl());
    let dijkstra = run_query(&ngram, &tok, SearchStrategy::ShortestPath);
    let beam = run_query(&ngram, &tok, SearchStrategy::Beam { width: 128 });
    assert_eq!(dijkstra, beam);
}
