//! The sharded server's contract: splitting the driver across N shard
//! threads changes *throughput*, never *answers*. Served results stay
//! **byte-identical** (f64 bits included) to solo `Relm::search` at any
//! shard count — connection affinity pins each connection's pipelined
//! stream to one driver, so per-connection determinism survives — and
//! backpressure refuses with typed busy frames instead of stalling or
//! killing connections.

#![forbid(unsafe_code)]

use std::collections::HashMap;

use relm::serve::{
    spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig, ServerHandle,
    StrategySpec,
};
use relm::{BpeTokenizer, NGramConfig, NGramLm, Relm};

const DOCS: [&str; 4] = [
    "the cat sat on the mat",
    "the cat sat on the mat",
    "the dog sat on the log",
    "the cow ate the grass",
];

fn fixture() -> (BpeTokenizer, NGramLm) {
    let corpus = DOCS.join(". ");
    let tok = BpeTokenizer::train(&corpus, 80);
    let lm = NGramLm::train(&tok, &DOCS, NGramConfig::xl());
    (tok, lm)
}

fn start_server(config: ServerConfig) -> ServerHandle {
    let (tok, lm) = fixture();
    let client = Relm::new(lm, tok).unwrap();
    spawn(RelmServer::with_config(client, config), "127.0.0.1:0").unwrap()
}

fn solo_bits(client: &Relm<NGramLm>, request: &QueryRequest) -> Vec<(String, u64)> {
    client
        .search(&request.to_search_query())
        .unwrap()
        .take(request.max_results)
        .map(|m| (m.text, m.log_prob.to_bits()))
        .collect()
}

fn served_bits(response: &Response) -> Vec<(String, u64)> {
    match response {
        Response::Matches { matches, .. } => matches
            .iter()
            .map(|m| (m.text.clone(), m.score_bits))
            .collect(),
        other => panic!("expected matches, got {other:?}"),
    }
}

/// One client's answers: each request paired with its served bits.
type ClientAnswers = Vec<(QueryRequest, Vec<(String, u64)>)>;

/// All three executors in one pipelined stream, as `tests/serve.rs`
/// uses — the workload whose answers must not depend on shard count.
fn mixed_requests(id_base: u64, seed: u64) -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(id_base, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3),
        QueryRequest::new(id_base + 1, "the ((cat)|(dog)) sat on the ((mat)|(log))", 2)
            .with_strategy(StrategySpec::Beam { width: 8 }),
        QueryRequest::new(id_base + 2, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 4)
            .with_strategy(StrategySpec::Sampling { seed })
            .with_max_tokens(16),
        QueryRequest::new(id_base + 3, "the cow ate the grass", 1).with_top_k(40),
    ]
}

/// Run six interleaved pipelined clients against a server with the
/// given shard count and return every (request, served bits) pair.
fn serve_workload(shards: usize) -> (ClientAnswers, relm::serve::ServerReport) {
    let handle = start_server(ServerConfig::new().with_shards(shards));
    let addr = handle.addr();
    let collected: Vec<ClientAnswers> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0u64..6)
            .map(|t| {
                scope.spawn(move || {
                    let requests = mixed_requests(10 * t, 31 + t);
                    let mut client = ServeClient::connect(addr).unwrap();
                    // Pipelined: every request on the wire before any
                    // response is read.
                    for request in &requests {
                        client.send(&Request::Query(request.clone())).unwrap();
                    }
                    let mut by_id: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
                    for _ in 0..requests.len() {
                        let response = client.recv().unwrap();
                        let Response::Matches { id, .. } = &response else {
                            panic!("expected matches, got {response:?}");
                        };
                        by_id.insert(*id, served_bits(&response));
                    }
                    requests
                        .into_iter()
                        .map(|request| {
                            let bits = by_id.remove(&request.id).expect("every request answered");
                            (request, bits)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let report = handle.stop().unwrap();
    (collected.into_iter().flatten().collect(), report)
}

#[test]
fn sharded_results_are_bit_identical_to_single_shard_and_solo() {
    let (tok, lm) = fixture();
    let solo = Relm::new(lm, tok).unwrap();

    let (one_shard, one_report) = serve_workload(1);
    let (four_shards, four_report) = serve_workload(4);

    // Both configurations answer bit-identically to solo execution —
    // which also makes them bit-identical to each other.
    for (request, served) in one_shard.iter().chain(&four_shards) {
        assert_eq!(
            served,
            &solo_bits(&solo, request),
            "shard-count-dependent answer for {request:?}"
        );
    }

    assert_eq!(one_report.shards.len(), 1);
    assert_eq!(four_report.shards.len(), 4);
    for report in [&one_report, &four_report] {
        assert_eq!(report.accepted, 6);
        assert_eq!(report.admitted, 24);
        assert_eq!(report.completed, 24);
        assert_eq!(report.cancelled, 0);
        // The per-shard sections must add back up to the totals.
        assert_eq!(
            report.shards.iter().map(|s| s.connections).sum::<u64>(),
            report.accepted
        );
        assert_eq!(
            report.shards.iter().map(|s| s.admitted).sum::<u64>(),
            report.admitted
        );
        assert_eq!(
            report.shards.iter().map(|s| s.completed).sum::<u64>(),
            report.completed
        );
    }
    // Round-robin affinity: six connections over four shards land 2/2/1/1.
    let mut conns: Vec<u64> = four_report.shards.iter().map(|s| s.connections).collect();
    conns.sort_unstable();
    assert_eq!(conns, vec![1, 1, 2, 2]);
}

#[test]
fn greedy_client_is_refused_politely_while_a_polite_client_completes() {
    let handle = start_server(
        ServerConfig::new()
            .with_shards(2)
            .with_max_inflight_per_conn(2),
    );
    let addr = handle.addr();

    // The greedy client pipelines six slow sampling walks at once; its
    // quota is two, so the overflow must come back as typed busy frames
    // — not errors, not a dead connection, not a stall.
    let mut greedy = ServeClient::connect(addr).unwrap();
    for id in 0..6u64 {
        greedy
            .send(&Request::Query(
                QueryRequest::new(id, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 30)
                    .with_strategy(StrategySpec::Sampling { seed: 17 + id })
                    .with_max_tokens(16),
            ))
            .unwrap();
    }
    let (mut completed, mut busy) = (0u64, 0u64);
    for _ in 0..6 {
        match greedy.recv().unwrap() {
            Response::Matches { .. } => completed += 1,
            Response::Busy { message, .. } => {
                assert!(
                    message.contains("quota"),
                    "the refusal names the quota: {message}"
                );
                busy += 1;
            }
            other => panic!("expected matches or busy, got {other:?}"),
        }
    }
    assert!(
        busy >= 1,
        "a six-deep pipeline must overflow a quota of two"
    );
    assert_eq!(completed + busy, 6, "every frame answered exactly once");

    // A polite client (one query in flight at a time) rides the same
    // server untouched by its neighbor's refusals.
    let (tok, lm) = fixture();
    let solo = Relm::new(lm, tok).unwrap();
    let mut polite = ServeClient::connect(addr).unwrap();
    for id in 100..103u64 {
        let request = QueryRequest::new(id, "the cow ate the grass", 1);
        let served = served_bits(&polite.roundtrip(&Request::Query(request.clone())).unwrap());
        assert_eq!(served, solo_bits(&solo, &request));
    }

    let report = handle.stop().unwrap();
    assert_eq!(report.busy_rejections, busy);
    assert_eq!(report.completed, completed + 3);
}

#[test]
fn tiny_deadline_on_a_large_walk_answers_deadline_exceeded() {
    let handle = start_server(ServerConfig::new().with_shards(2));
    let addr = handle.addr();

    // An effectively unbounded sampling walk (tiny language: the stream
    // only ends at the cap) with a 1ms budget must come back as a typed
    // deadline frame, and the connection must stay serviceable.
    let mut client = ServeClient::connect(addr).unwrap();
    let doomed = QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 1_000_000)
        .with_strategy(StrategySpec::Sampling { seed: 5 })
        .with_max_tokens(16)
        .with_deadline_ms(1);
    let response = client.roundtrip(&Request::Query(doomed)).unwrap();
    assert_eq!(response, Response::DeadlineExceeded { id: 1 });

    let (tok, lm) = fixture();
    let solo = Relm::new(lm, tok).unwrap();
    let request = QueryRequest::new(2, "the cow ate the grass", 1);
    let served = served_bits(&client.roundtrip(&Request::Query(request.clone())).unwrap());
    assert_eq!(served, solo_bits(&solo, &request));

    // A workable deadline on the same shape completes normally: the
    // sweep only stops queries whose budget actually elapsed.
    let roomy =
        QueryRequest::new(3, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3).with_deadline_ms(60_000);
    let served = served_bits(&client.roundtrip(&Request::Query(roomy.clone())).unwrap());
    assert_eq!(served, solo_bits(&solo, &roomy));

    let report = handle.stop().unwrap();
    assert_eq!(report.expired, 1);
    assert_eq!(report.completed, 2);
    assert_eq!(report.cancelled, 0, "expiry is not a cancel");
}
