//! Failure-injection and edge-case tests across the public API: weird
//! patterns, degenerate corpora, adversarial query configurations. The
//! client must degrade with clean errors or empty results — never panic,
//! hang, or emit out-of-language strings.

#![forbid(unsafe_code)]

use relm::{
    explain, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor, QueryString, Regex,
    Relm, RelmError, SearchQuery, SearchStrategy, TokenizationStrategy,
};

fn tiny() -> Relm<NGramLm> {
    let corpus = "hello world. goodbye world.";
    let tok = BpeTokenizer::train(corpus, 30);
    let lm = NGramLm::train(
        &tok,
        &["hello world", "goodbye world"],
        NGramConfig::small(),
    );
    Relm::new(lm, tok).expect("tiny fixture builds")
}

#[test]
fn invalid_patterns_surface_as_errors() {
    let client = tiny();
    for bad in ["a(", "a)", "[z-a]", "a{3,1}", "*a", "a{", "ab\\"] {
        let err = client
            .search(&SearchQuery::new(QueryString::new(bad)))
            .err()
            .unwrap_or_else(|| panic!("{bad:?} should fail to parse"));
        assert!(matches!(err, RelmError::Regex(_)), "{bad:?}: {err}");
        assert_eq!(
            err.kind(),
            relm::RelmErrorKind::Pattern,
            "{bad:?} classifies as a pattern error"
        );
    }
}

#[test]
fn empty_pattern_matches_empty_string() {
    let client = tiny();
    let results: Vec<_> = client
        .search(&SearchQuery::new(QueryString::new("")))
        .unwrap()
        .take(2)
        .collect();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].text, "");
    assert!(results[0].tokens.is_empty());
}

#[test]
fn zero_max_tokens_is_rejected() {
    let client = tiny();
    let query = SearchQuery::new(QueryString::new("hello")).with_max_tokens(0);
    assert!(matches!(
        client.search(&query),
        Err(RelmError::InvalidQuery(_))
    ));
}

#[test]
fn pattern_longer_than_model_window_yields_nothing_gracefully() {
    let client = tiny();
    // 500 letters — far beyond max_sequence_len.
    let long = "x".repeat(500);
    let query = SearchQuery::new(QueryString::new(relm::escape(&long)));
    let results: Vec<_> = client.search(&query).unwrap().take(1).collect();
    assert!(results.is_empty());
}

#[test]
fn untrained_model_still_searches() {
    // A model trained on nothing: pure uniform floor.
    let tok = BpeTokenizer::train("", 0);
    let lm = NGramLm::train(&tok, &[], NGramConfig::small());
    let client = Relm::new(lm, tok).unwrap();
    let query = SearchQuery::new(QueryString::new("(a)|(b)"));
    let results: Vec<_> = client.search(&query).unwrap().take(5).collect();
    assert_eq!(
        results.len(),
        2,
        "uniform model still enumerates the language"
    );
}

#[test]
fn non_ascii_bytes_round_trip_through_queries() {
    // UTF-8 multibyte text goes through as raw bytes.
    let corpus = "caf\u{e9} au lait. caf\u{e9} noir.";
    let tok = BpeTokenizer::train(corpus, 40);
    let lm = NGramLm::train(
        &tok,
        &["caf\u{e9} au lait", "caf\u{e9} noir"],
        NGramConfig::xl(),
    );
    let client = Relm::new(lm, tok).unwrap();
    let query = SearchQuery::new(QueryString::new(relm::escape("caf\u{e9} noir")));
    let m = client.search(&query).unwrap().next().expect("match");
    assert_eq!(m.text, "caf\u{e9} noir");
}

#[test]
fn top_k_one_on_flat_model_prunes_everything_but_one_path() {
    let tok = BpeTokenizer::train("", 0);
    let lm = NGramLm::train(&tok, &[], NGramConfig::small());
    let client = Relm::new(lm, tok).unwrap();
    // Uniform distribution + greedy: ties break by token id, so exactly
    // one byte survives each step; the language {a, b} may be fully
    // pruned or keep one member, never both.
    let query = SearchQuery::new(QueryString::new("(a)|(b)")).with_policy(DecodingPolicy::greedy());
    let results: Vec<_> = client.search(&query).unwrap().take(5).collect();
    assert!(results.len() <= 1);
}

#[test]
fn conflicting_filters_empty_the_language_cleanly() {
    let client = tiny();
    let all = Regex::compile("(hello)|(world)").unwrap().dfa().clone();
    let query = SearchQuery::new(QueryString::new("(hello)|(world)"))
        .with_preprocessor(Preprocessor::filter(all));
    assert_eq!(client.search(&query).err(), Some(RelmError::EmptyLanguage));
}

#[test]
fn deferred_filter_that_rejects_everything_exhausts_attempts() {
    let client = tiny();
    let all = Regex::compile("[a-z ]*").unwrap().dfa().clone();
    let query = SearchQuery::new(QueryString::new("hello( world)?"))
        .with_strategy(SearchStrategy::RandomSampling { seed: 1 })
        .with_preprocessor(Preprocessor::deferred_filter(all));
    // Every sample is filtered; the iterator must terminate empty.
    let results: Vec<_> = client.search(&query).unwrap().take(3).collect();
    assert!(results.is_empty());
}

#[test]
fn beam_width_one_terminates_on_infinite_languages() {
    let client = tiny();
    let query = SearchQuery::new(QueryString::new("h[a-z]*"))
        .with_strategy(SearchStrategy::Beam { width: 1 })
        .with_max_tokens(8);
    let results: Vec<_> = client.search(&query).unwrap().collect();
    let re = Regex::compile("h[a-z]*").unwrap();
    for m in &results {
        assert!(re.is_match(&m.text));
    }
}

#[test]
fn explain_matches_execution_reality() {
    let client = tiny();
    let query = SearchQuery::new(QueryString::new("hello( world)?").with_prefix("hello"));
    let plan = explain(&query, client.tokenizer(), 128).unwrap();
    assert!(plan.prefix_machine.is_some());
    // The plan compiled, so the search must too.
    let results: Vec<_> = client.search(&query).unwrap().take(4).collect();
    assert!(!results.is_empty());
}

#[test]
fn all_encodings_of_multibyte_language_stay_sound() {
    let client = tiny();
    let query = SearchQuery::new(QueryString::new("(hello)|(world)"))
        .with_tokenization(TokenizationStrategy::All)
        .with_distinct_texts(false);
    let results: Vec<_> = client.search(&query).unwrap().take(40).collect();
    assert!(
        results.len() > 2,
        "ambiguous encodings should multiply results"
    );
    for m in &results {
        assert!(m.text == "hello" || m.text == "world", "{:?}", m.text);
        assert_eq!(client.tokenizer().decode(&m.tokens), m.text);
    }
    // Every token sequence distinct even when texts repeat.
    let mut seen = std::collections::HashSet::new();
    for m in &results {
        assert!(seen.insert(m.tokens.clone()), "duplicate token path");
    }
}

#[test]
fn levenshtein_of_empty_pattern_is_inserts_only() {
    let client = tiny();
    let query = SearchQuery::new(QueryString::new(""))
        .with_preprocessor(Preprocessor::levenshtein(1))
        .with_max_tokens(4);
    // Within 1 edit of ε = ε plus every single character.
    let results: Vec<_> = client.search(&query).unwrap().take(50).collect();
    assert!(results.iter().any(|m| m.text.is_empty()));
    assert!(results.iter().all(|m| m.text.len() <= 1));
}
