//! Failure-injection and edge-case tests across the public API: weird
//! patterns, degenerate corpora, adversarial query configurations. The
//! engine must degrade with clean errors or empty results — never panic,
//! hang, or emit out-of-language strings.

use relm::{
    explain, search, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor, QueryString,
    Regex, RelmError, SearchQuery, SearchStrategy, TokenizationStrategy,
};

fn tiny() -> (BpeTokenizer, NGramLm) {
    let corpus = "hello world. goodbye world.";
    let tok = BpeTokenizer::train(corpus, 30);
    let lm = NGramLm::train(
        &tok,
        &["hello world", "goodbye world"],
        NGramConfig::small(),
    );
    (tok, lm)
}

#[test]
fn invalid_patterns_surface_as_errors() {
    let (tok, lm) = tiny();
    for bad in ["a(", "a)", "[z-a]", "a{3,1}", "*a", "a{", "ab\\"] {
        let err = search(&lm, &tok, &SearchQuery::new(QueryString::new(bad)));
        assert!(
            matches!(err, Err(RelmError::Regex(_))),
            "{bad:?} should fail to parse"
        );
    }
}

#[test]
fn empty_pattern_matches_empty_string() {
    let (tok, lm) = tiny();
    let results: Vec<_> = search(&lm, &tok, &SearchQuery::new(QueryString::new("")))
        .unwrap()
        .take(2)
        .collect();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].text, "");
    assert!(results[0].tokens.is_empty());
}

#[test]
fn zero_max_tokens_is_rejected() {
    let (tok, lm) = tiny();
    let query = SearchQuery::new(QueryString::new("hello")).with_max_tokens(0);
    assert!(matches!(
        search(&lm, &tok, &query),
        Err(RelmError::InvalidQuery(_))
    ));
}

#[test]
fn pattern_longer_than_model_window_yields_nothing_gracefully() {
    let (tok, lm) = tiny();
    // 500 letters — far beyond max_sequence_len.
    let long = "x".repeat(500);
    let query = SearchQuery::new(QueryString::new(relm::escape(&long)));
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(1).collect();
    assert!(results.is_empty());
}

#[test]
fn untrained_model_still_searches() {
    // A model trained on nothing: pure uniform floor.
    let tok = BpeTokenizer::train("", 0);
    let lm = NGramLm::train(&tok, &[], NGramConfig::small());
    let query = SearchQuery::new(QueryString::new("(a)|(b)"));
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(5).collect();
    assert_eq!(
        results.len(),
        2,
        "uniform model still enumerates the language"
    );
}

#[test]
fn non_ascii_bytes_round_trip_through_queries() {
    // UTF-8 multibyte text goes through as raw bytes.
    let corpus = "caf\u{e9} au lait. caf\u{e9} noir.";
    let tok = BpeTokenizer::train(corpus, 40);
    let lm = NGramLm::train(
        &tok,
        &["caf\u{e9} au lait", "caf\u{e9} noir"],
        NGramConfig::xl(),
    );
    let query = SearchQuery::new(QueryString::new(relm::escape("caf\u{e9} noir")));
    let m = search(&lm, &tok, &query).unwrap().next().expect("match");
    assert_eq!(m.text, "caf\u{e9} noir");
}

#[test]
fn top_k_one_on_flat_model_prunes_everything_but_one_path() {
    let tok = BpeTokenizer::train("", 0);
    let lm = NGramLm::train(&tok, &[], NGramConfig::small());
    // Uniform distribution + greedy: ties break by token id, so exactly
    // one byte survives each step; the language {a, b} may be fully
    // pruned or keep one member, never both.
    let query = SearchQuery::new(QueryString::new("(a)|(b)")).with_policy(DecodingPolicy::greedy());
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(5).collect();
    assert!(results.len() <= 1);
}

#[test]
fn conflicting_filters_empty_the_language_cleanly() {
    let (tok, lm) = tiny();
    let all = Regex::compile("(hello)|(world)").unwrap().dfa().clone();
    let query = SearchQuery::new(QueryString::new("(hello)|(world)"))
        .with_preprocessor(Preprocessor::filter(all));
    assert_eq!(
        search(&lm, &tok, &query).err(),
        Some(RelmError::EmptyLanguage)
    );
}

#[test]
fn deferred_filter_that_rejects_everything_exhausts_attempts() {
    let (tok, lm) = tiny();
    let all = Regex::compile("[a-z ]*").unwrap().dfa().clone();
    let query = SearchQuery::new(QueryString::new("hello( world)?"))
        .with_strategy(SearchStrategy::RandomSampling { seed: 1 })
        .with_preprocessor(Preprocessor::deferred_filter(all));
    // Every sample is filtered; the iterator must terminate empty.
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(3).collect();
    assert!(results.is_empty());
}

#[test]
fn beam_width_one_terminates_on_infinite_languages() {
    let (tok, lm) = tiny();
    let query = SearchQuery::new(QueryString::new("h[a-z]*"))
        .with_strategy(SearchStrategy::Beam { width: 1 })
        .with_max_tokens(8);
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().collect();
    let re = Regex::compile("h[a-z]*").unwrap();
    for m in &results {
        assert!(re.is_match(&m.text));
    }
}

#[test]
fn explain_matches_execution_reality() {
    let (tok, lm) = tiny();
    let query = SearchQuery::new(QueryString::new("hello( world)?").with_prefix("hello"));
    let plan = explain(&query, &tok, 128).unwrap();
    assert!(plan.prefix_machine.is_some());
    // The plan compiled, so the search must too.
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(4).collect();
    assert!(!results.is_empty());
}

#[test]
fn all_encodings_of_multibyte_language_stay_sound() {
    let (tok, lm) = tiny();
    let query = SearchQuery::new(QueryString::new("(hello)|(world)"))
        .with_tokenization(TokenizationStrategy::All)
        .with_distinct_texts(false);
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(40).collect();
    assert!(
        results.len() > 2,
        "ambiguous encodings should multiply results"
    );
    for m in &results {
        assert!(m.text == "hello" || m.text == "world", "{:?}", m.text);
        assert_eq!(tok.decode(&m.tokens), m.text);
    }
    // Every token sequence distinct even when texts repeat.
    let mut seen = std::collections::HashSet::new();
    for m in &results {
        assert!(seen.insert(m.tokens.clone()), "duplicate token path");
    }
}

#[test]
fn levenshtein_of_empty_pattern_is_inserts_only() {
    let (tok, lm) = tiny();
    let query = SearchQuery::new(QueryString::new(""))
        .with_preprocessor(Preprocessor::levenshtein(1))
        .with_max_tokens(4);
    // Within 1 edit of ε = ε plus every single character.
    let results: Vec<_> = search(&lm, &tok, &query).unwrap().take(50).collect();
    assert!(results.iter().any(|m| m.text.is_empty()));
    assert!(results.iter().all(|m| m.text.len() <= 1));
}
