//! The persistent worker pool's contract: pooled execution must be
//! invisible in every output, and visible only in the thread ledger.
//!
//! * pool-backed scoring ([`pooled_scores`]) is **byte-identical** (f64
//!   bits) to the spawn-backed reference ([`fan_out_scores`]) and to the
//!   serial loop — fixed fixtures and proptest over random batch sizes
//!   and thread counts;
//! * the vectorized n-gram forward kernel matches the scalar reference
//!   bit for bit, at the model level and through whole searches;
//! * serial and pool-backed clients return byte-identical results for
//!   all three executors, solo, under `run_many`, and over the TCP
//!   serving path;
//! * steady-state batches spawn **zero** new threads (the pool's spawn
//!   counter stays flat), and dropping a pool drains every queued job.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use relm::serve::{spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig};
use relm::{
    fan_out_scores, pooled_scores, BpeTokenizer, DecodingPolicy, ForwardKernel, LanguageModel,
    MatchResult, NGramConfig, NGramLm, Parallelism, QuerySet, QueryString, Relm, SearchQuery,
    SearchStrategy, TokenId, TokenizationStrategy, WorkerPool,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "see https://www.example.com/articles today",
        "see https://www.example.com/articles today",
        "see https://www.example.org/posts now",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

fn url_query() -> SearchQuery {
    SearchQuery::new(QueryString::new("https://www\\.([a-z]|\\.|/)+").with_prefix("https://www\\."))
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(16)
        .with_max_expansions(3_000)
}

/// A batch of scoring contexts with shared prefixes and varied lengths.
fn contexts(tok: &BpeTokenizer, n: usize) -> Vec<Vec<TokenId>> {
    let texts = [
        "the cat",
        "the cat sat",
        "the dog sat on",
        "the cow",
        "see https://www.example",
        "the",
    ];
    (0..n)
        .map(|i| {
            let mut ctx = tok.encode(texts[i % texts.len()]);
            ctx.truncate(1 + i % 5);
            ctx
        })
        .collect()
}

fn assert_rows_bit_identical(label: &str, a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len(), "{label}: row counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{label}[{i}]: row widths differ");
        for (j, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{label}[{i}][{j}]: {p} vs {q}");
        }
    }
}

fn assert_bit_identical(label: &str, a: &[MatchResult], b: &[MatchResult]) {
    assert_eq!(a.len(), b.len(), "{label}: match counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.text, y.text, "{label}[{i}]: text");
        assert_eq!(x.tokens, y.tokens, "{label}[{i}]: tokens");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "{label}[{i}]: log_prob bits"
        );
    }
}

#[test]
fn pooled_scores_match_spawned_and_serial() {
    let (tok, lm) = fixture();
    let ctxs = contexts(&tok, 64);
    let refs: Vec<&[TokenId]> = ctxs.iter().map(Vec::as_slice).collect();
    let serial: Vec<Vec<f64>> = refs.iter().map(|c| lm.next_log_probs(c)).collect();
    for workers in [2usize, 3, 4, 7] {
        let spawned = fan_out_scores(&lm, &refs, workers);
        assert_rows_bit_identical(&format!("spawned w={workers}"), &serial, &spawned);
        let pooled = pooled_scores(&lm, &refs, Parallelism::sharded(workers))
            .expect("batch large enough to pool");
        assert_rows_bit_identical(&format!("pooled w={workers}"), &serial, &pooled);
    }
}

#[test]
fn vectorized_kernel_matches_scalar_through_whole_searches() {
    let (tok, lm) = fixture();
    assert_eq!(lm.kernel(), ForwardKernel::Vectorized);
    let scalar_lm = lm.clone().with_kernel(ForwardKernel::Scalar);
    // Model level: every distribution bit-identical across kernels.
    let ctxs = contexts(&tok, 48);
    let refs: Vec<&[TokenId]> = ctxs.iter().map(Vec::as_slice).collect();
    assert_rows_bit_identical(
        "kernel",
        &refs
            .iter()
            .map(|c| scalar_lm.next_log_probs(c))
            .collect::<Vec<_>>(),
        &refs
            .iter()
            .map(|c| lm.next_log_probs(c))
            .collect::<Vec<_>>(),
    );
    // Executor level: whole searches agree for all three strategies.
    let vec_client = Relm::new(&lm, tok.clone()).unwrap();
    let scalar_client = Relm::new(&scalar_lm, tok.clone()).unwrap();
    for (label, query, take) in [
        ("dijkstra", url_query(), 5),
        (
            "beam16",
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            5,
        ),
        (
            "sampling",
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 7 }),
            8,
        ),
    ] {
        let a: Vec<MatchResult> = scalar_client.search(&query).unwrap().take(take).collect();
        let b: Vec<MatchResult> = vec_client.search(&query).unwrap().take(take).collect();
        assert!(!a.is_empty(), "{label}: no matches");
        assert_bit_identical(label, &a, &b);
    }
}

#[test]
fn serial_and_pooled_clients_are_byte_identical_for_all_executors() {
    let (tok, lm) = fixture();
    let serial = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::Serial)
        .build()
        .unwrap();
    let pooled = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::sharded(4))
        .build()
        .unwrap();
    for (label, query, take) in [
        ("dijkstra", url_query(), 5),
        (
            "dijkstra_full_encodings",
            url_query().with_tokenization(TokenizationStrategy::All),
            5,
        ),
        (
            "beam64",
            url_query().with_strategy(SearchStrategy::Beam { width: 64 }),
            5,
        ),
        (
            "sampling",
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 13 }),
            8,
        ),
    ] {
        let a: Vec<MatchResult> = serial.search(&query).unwrap().take(take).collect();
        let b: Vec<MatchResult> = pooled.search(&query).unwrap().take(take).collect();
        assert!(!a.is_empty(), "{label}: no matches");
        assert_bit_identical(label, &a, &b);
    }
    // And under the coalescing multi-query driver.
    let set: QuerySet = QuerySet::new()
        .with_query(url_query(), 4)
        .with_query(
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            4,
        )
        .with_query(
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 11 }),
            6,
        );
    let a = serial.run_many(&set).unwrap();
    let b = pooled.run_many(&set).unwrap();
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_bit_identical(&format!("run_many[{i}]"), &x.matches, &y.matches);
    }
}

#[test]
fn served_path_on_a_pooled_client_is_byte_identical_to_solo_serial() {
    let (tok, lm) = fixture();
    let solo = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::Serial)
        .build()
        .unwrap();
    let (tok2, lm2) = fixture();
    let pooled = Relm::builder(lm2, tok2)
        .parallelism(Parallelism::sharded(4))
        .build()
        .unwrap();
    let handle = spawn(
        RelmServer::with_config(pooled, ServerConfig::new()),
        "127.0.0.1:0",
    )
    .unwrap();
    let requests = vec![
        QueryRequest::new(0, "https://www\\.([a-z]|\\.|/)+", 4),
        QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3),
        QueryRequest::new(2, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 4)
            .with_strategy(relm::serve::StrategySpec::Sampling { seed: 5 })
            .with_max_tokens(16),
    ];
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    for request in &requests {
        client.send(&Request::Query(request.clone())).unwrap();
    }
    let mut served: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for _ in 0..requests.len() {
        let response = client.recv().unwrap();
        let Response::Matches { id, matches, .. } = &response else {
            panic!("expected matches, got {response:?}");
        };
        served.insert(
            *id,
            matches
                .iter()
                .map(|m| (m.text.clone(), m.score_bits))
                .collect(),
        );
    }
    for request in &requests {
        let expected: Vec<(String, u64)> = solo
            .search(&request.to_search_query())
            .unwrap()
            .take(request.max_results)
            .map(|m| (m.text, m.log_prob.to_bits()))
            .collect();
        assert_eq!(
            served.remove(&request.id).unwrap(),
            expected,
            "served-vs-solo for {request:?}"
        );
    }
    handle.stop().unwrap();
}

#[test]
fn steady_state_batches_spawn_no_threads() {
    let (tok, lm) = fixture();
    let par = Parallelism::sharded(3);
    let pool = WorkerPool::for_parallelism(par);
    let ctxs = contexts(&tok, 40);
    let refs: Vec<&[TokenId]> = ctxs.iter().map(Vec::as_slice).collect();
    // Warm the pool with one batch, then hammer it: the spawn counter
    // must stay flat — every later batch reuses the parked workers.
    let _ = pooled_scores(&lm, &refs, par).expect("pooled");
    let spawned = pool.spawn_count();
    assert_eq!(spawned, pool.workers() as u64);
    for _ in 0..20 {
        let out = pooled_scores(&lm, &refs, par).expect("pooled");
        assert_eq!(out.len(), refs.len());
    }
    // Whole searches route through the same registry pool.
    let client = Relm::builder(&lm, tok.clone())
        .parallelism(par)
        .build()
        .unwrap();
    for seed in 0..4 {
        let _ = client
            .search(&url_query().with_strategy(SearchStrategy::RandomSampling { seed }))
            .unwrap()
            .take(4)
            .count();
    }
    assert_eq!(
        pool.spawn_count(),
        spawned,
        "steady-state batches must not spawn threads"
    );
}

#[test]
fn dropping_a_pool_drains_queued_jobs() {
    let done = Arc::new(AtomicUsize::new(0));
    let total = 64;
    {
        let pool = WorkerPool::new(2);
        for _ in 0..total {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Dropped here with jobs still queued: shutdown must drain.
    }
    assert_eq!(done.load(Ordering::SeqCst), total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random batch sizes and worker counts: pooled, spawned, and serial
    /// scoring agree bit for bit (when the batch is big enough to pool).
    #[test]
    fn proptest_pooled_scoring_is_bit_identical(
        batch in 1usize..80,
        workers in 1usize..6,
    ) {
        let (tok, lm) = fixture();
        let ctxs = contexts(&tok, batch);
        let refs: Vec<&[TokenId]> = ctxs.iter().map(Vec::as_slice).collect();
        let serial: Vec<Vec<f64>> = refs.iter().map(|c| lm.next_log_probs(c)).collect();
        let spawned = fan_out_scores(&lm, &refs, workers);
        prop_assert_eq!(serial.len(), spawned.len());
        if let Some(pooled) = pooled_scores(&lm, &refs, Parallelism::sharded(workers)) {
            prop_assert_eq!(serial.len(), pooled.len());
            for (x, y) in serial.iter().zip(&pooled) {
                for (p, q) in x.iter().zip(y) {
                    prop_assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
        for (x, y) in serial.iter().zip(&spawned) {
            for (p, q) in x.iter().zip(y) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    /// Random batches agree across kernels, bit for bit.
    #[test]
    fn proptest_kernels_agree(batch in 1usize..40) {
        let (tok, lm) = fixture();
        let scalar_lm = lm.clone().with_kernel(ForwardKernel::Scalar);
        for ctx in contexts(&tok, batch) {
            let a = scalar_lm.next_log_probs(&ctx);
            let b = lm.next_log_probs(&ctx);
            prop_assert_eq!(a.len(), b.len());
            for (p, q) in a.iter().zip(&b) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }
}
