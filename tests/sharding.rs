//! Sharding determinism: the parallel compile and parallel frontier
//! paths must be invisible in every output.
//!
//! * sharded compilation (subset-construction waves, quotient
//!   determinization, the shortcut-edge vocabulary scan, the canonical
//!   encode) produces **structurally identical** automata to the serial
//!   reference path — checked both on fixed patterns and under proptest;
//! * `Parallelism::Serial` and `Parallelism::Sharded(n)` clients return
//!   **byte-identical** results (f64-bit comparison on scores) for all
//!   three executors, one query at a time and under `run_many`;
//! * the `TickQuantum` knob changes only the batching schedule, never a
//!   result, and its decision is visible in `ExecutionStats`.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use relm::{
    BpeTokenizer, DecodingPolicy, MatchResult, NGramConfig, NGramLm, Parallelism, QuerySet,
    QueryString, Regex, Relm, SearchQuery, SearchStrategy, TickQuantum, TokenizationStrategy,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "see https://www.example.com/articles today",
        "see https://www.example.com/articles today",
        "see https://www.example.org/posts now",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

fn url_query() -> SearchQuery {
    SearchQuery::new(QueryString::new("https://www\\.([a-z]|\\.|/)+").with_prefix("https://www\\."))
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(16)
        .with_max_expansions(3_000)
}

/// f64-bit equality on whole match lists: text, tokens, prefix split,
/// canonicity, and the score's exact bit pattern.
fn assert_bit_identical(label: &str, a: &[MatchResult], b: &[MatchResult]) {
    assert_eq!(a.len(), b.len(), "{label}: match counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.text, y.text, "{label}[{i}]: text");
        assert_eq!(x.tokens, y.tokens, "{label}[{i}]: tokens");
        assert_eq!(x.prefix_len, y.prefix_len, "{label}[{i}]: prefix_len");
        assert_eq!(x.canonical, y.canonical, "{label}[{i}]: canonical");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "{label}[{i}]: log_prob bits ({} vs {})",
            x.log_prob,
            y.log_prob
        );
    }
}

#[test]
fn serial_and_sharded_executors_are_byte_identical() {
    let (tok, lm) = fixture();
    let serial = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::Serial)
        .build()
        .unwrap();
    let sharded = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::sharded(4))
        .build()
        .unwrap();
    let workloads: Vec<(&str, SearchQuery, usize)> = vec![
        ("dijkstra", url_query(), 5),
        (
            "dijkstra_full_encodings",
            url_query().with_tokenization(TokenizationStrategy::All),
            5,
        ),
        (
            "beam16",
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            5,
        ),
        (
            // Wide enough (64 paths x ~376-token vocabulary) to clear
            // the beam executor's level-work spawn gate, so the sharded
            // client really fans the expansion across workers.
            "beam64_full_encodings",
            url_query()
                .with_tokenization(TokenizationStrategy::All)
                .with_strategy(SearchStrategy::Beam { width: 64 }),
            5,
        ),
        (
            "sampling",
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 7 }),
            8,
        ),
    ];
    for (label, query, take) in &workloads {
        let a: Vec<MatchResult> = serial.search(query).unwrap().take(*take).collect();
        let b: Vec<MatchResult> = sharded.search(query).unwrap().take(*take).collect();
        assert!(!a.is_empty(), "{label}: no matches");
        assert_bit_identical(label, &a, &b);
    }
}

#[test]
fn serial_and_sharded_run_many_are_byte_identical() {
    let (tok, lm) = fixture();
    let set: QuerySet = QuerySet::new()
        .with_query(url_query(), 4)
        .with_query(
            url_query().with_strategy(SearchStrategy::Beam { width: 16 }),
            4,
        )
        .with_query(
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 11 }),
            6,
        );
    let serial = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::Serial)
        .build()
        .unwrap();
    let sharded = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::sharded(3))
        .build()
        .unwrap();
    let a = serial.run_many(&set).unwrap();
    let b = sharded.run_many(&set).unwrap();
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_bit_identical(&format!("run_many[{i}]"), &x.matches, &y.matches);
    }
    // And run_many matches one-at-a-time execution under both settings.
    for (client, report) in [(&serial, &a), (&sharded, &b)] {
        for (spec, outcome) in set.specs().iter().zip(&report.outcomes) {
            let alone: Vec<MatchResult> = client
                .search(&spec.query)
                .unwrap()
                .take(spec.max_results)
                .collect();
            assert_bit_identical("run_many_vs_alone", &outcome.matches, &alone);
        }
    }
}

#[test]
fn tick_quantum_changes_schedule_not_results() {
    let (tok, lm) = fixture();
    let client = Relm::new(&lm, tok).unwrap();
    let base: QuerySet = QuerySet::new()
        .with_query(url_query(), 4)
        .with_query(
            url_query().with_strategy(SearchStrategy::Beam { width: 8 }),
            4,
        )
        .with_query(
            url_query().with_strategy(SearchStrategy::RandomSampling { seed: 5 }),
            5,
        );
    let always = client
        .run_many(&base.clone().with_tick_quantum(TickQuantum::Always))
        .unwrap();
    let never = client
        .run_many(&base.clone().with_tick_quantum(TickQuantum::Never))
        .unwrap();
    let adaptive = client
        .run_many(&base.clone().with_tick_quantum(TickQuantum::Adaptive))
        .unwrap();
    for (x, y) in always.outcomes.iter().zip(&never.outcomes) {
        assert_bit_identical("always_vs_never", &x.matches, &y.matches);
    }
    for (x, y) in always.outcomes.iter().zip(&adaptive.outcomes) {
        assert_bit_identical("always_vs_adaptive", &x.matches, &y.matches);
    }
    // The decision is exposed: Always ticks and never skips; Never does
    // neither; Adaptive accounts for every opportunity either way.
    let always_stats = always.outcomes[0].stats;
    assert!(always_stats.coalesce_ticks > 0, "{always_stats:?}");
    assert_eq!(always_stats.coalesce_ticks_skipped, 0, "{always_stats:?}");
    let never_stats = never.outcomes[0].stats;
    assert_eq!(never_stats.coalesce_ticks, 0, "{never_stats:?}");
    assert_eq!(never_stats.coalesce_ticks_skipped, 0, "{never_stats:?}");
    // Every outcome of a set carries the same driver-wide counters.
    for outcome in &adaptive.outcomes {
        assert_eq!(
            outcome.stats.coalesce_ticks,
            adaptive.outcomes[0].stats.coalesce_ticks
        );
        assert_eq!(
            outcome.stats.coalesce_ticks_skipped,
            adaptive.outcomes[0].stats.coalesce_ticks_skipped
        );
    }
}

#[test]
fn plan_memo_eviction_still_triggers_with_shard_accounting() {
    // Regression for the shard-aware byte accounting: executing a plan
    // under a parallel setting materializes execute-time artifacts (the
    // walk table and the prefix shard index) *after* the memo insert;
    // the re-cost on the next memo hit must charge them and still
    // enforce the configured budget with evictions.
    let (tok, lm) = fixture();
    let probe = Relm::builder(&lm, tok.clone())
        .parallelism(Parallelism::sharded(4))
        .build()
        .unwrap();
    let sampling = url_query().with_strategy(SearchStrategy::RandomSampling { seed: 3 });
    probe.plan(&sampling).unwrap();
    let at_insert = probe.stats().plan_bytes;
    let _ = probe.search(&sampling).unwrap().take(3).count();
    probe.plan(&sampling).unwrap(); // memo hit: re-costs the entry
    let recharged = probe.stats().plan_bytes;
    assert!(
        recharged > at_insert,
        "execute-time artifacts must be charged on the next hit: {at_insert} -> {recharged}"
    );

    // A budget sized for ~1.5 recharged plans: compiling and executing
    // three query families must evict rather than blow the budget.
    let budget = recharged + recharged / 2;
    let (tok, lm) = fixture();
    let client = Relm::builder(&lm, tok)
        .parallelism(Parallelism::sharded(4))
        .plan_memo_bytes(budget)
        .build()
        .unwrap();
    for pattern in [
        "https://www\\.([a-z]|\\.|/)+",
        "see https://www\\.([a-z]|\\.|/)+",
        "the ((cat)|(dog)|(cow)) ((sat)|(ate))",
    ] {
        let q = SearchQuery::new(QueryString::new(pattern).with_prefix(&pattern[..3]))
            .with_strategy(SearchStrategy::RandomSampling { seed: 9 })
            .with_max_tokens(16);
        // Some prefixes may not be valid prefixes of the language; only
        // valid plans exercise the memo.
        if let Ok(mut results) = client.search(&q) {
            let _ = (&mut results).take(2).count();
        }
        let _ = client.plan(&q); // hit: re-cost under the budget
        let stats = client.stats();
        assert!(
            stats.plan_bytes <= budget,
            "budget violated: {} > {budget}",
            stats.plan_bytes
        );
    }
}

#[test]
fn sharded_compile_produces_structurally_identical_dfas() {
    let (tok, _lm) = fixture();
    use relm::compiler::{
        compile_canonical, compile_canonical_with, compile_full, compile_full_with, CanonicalLimits,
    };
    let char_dfa = Regex::compile("see https://www\\.([a-z]|\\.|/)+ ((cat)|(dog))")
        .unwrap()
        .dfa()
        .clone();
    let serial = compile_full(&char_dfa, &tok);
    for threads in [2usize, 4, 7] {
        assert_eq!(
            serial,
            compile_full_with(&char_dfa, &tok, Parallelism::sharded(threads)),
            "compile_full threads={threads}"
        );
    }
    let finite = Regex::compile("[a-z][a-z][0-9]").unwrap().dfa().clone();
    let a = compile_canonical(&finite, &tok, CanonicalLimits::default());
    let b = compile_canonical_with(
        &finite,
        &tok,
        CanonicalLimits::default(),
        Parallelism::sharded(4),
    );
    assert_eq!(a.automaton, b.automaton);
    assert_eq!(a.needs_canonical_check, b.needs_canonical_check);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random word-alternation patterns compile to structurally
    /// identical token automata under every worker count.
    #[test]
    fn proptest_sharded_compile_matches_serial(
        words in proptest::collection::vec("[a-z]{2,8}", 2..8),
        threads in 2usize..6,
    ) {
        let corpus = words.join(" ");
        let tok = BpeTokenizer::train(&corpus, 60);
        let pattern = words
            .iter()
            .map(|w| format!("({w})"))
            .collect::<Vec<_>>()
            .join("|");
        let char_dfa = Regex::compile(&pattern).unwrap().dfa().clone();
        let serial = relm::compiler::compile_full(&char_dfa, &tok);
        let sharded = relm::compiler::compile_full_with(
            &char_dfa,
            &tok,
            Parallelism::sharded(threads),
        );
        prop_assert_eq!(serial, sharded);
    }

    /// Random alternation queries return byte-identical shortest-path
    /// results under serial and sharded clients.
    #[test]
    fn proptest_serial_vs_sharded_search(
        words in proptest::collection::vec("[a-z]{2,6}", 2..6),
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        let docs: Vec<String> = words.iter().map(|w| format!("{w} end")).collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let corpus = docs.join(". ");
        let tok = BpeTokenizer::train(&corpus, 50);
        let lm = NGramLm::train(&tok, &doc_refs, NGramConfig::small());
        let pattern = words
            .iter()
            .map(|w| format!("({w})"))
            .collect::<Vec<_>>()
            .join("|");
        let query = SearchQuery::new(QueryString::new(format!("({pattern}) end")))
            .with_max_tokens(12);
        let sampling = query
            .clone()
            .with_strategy(SearchStrategy::RandomSampling { seed });
        let serial = Relm::builder(&lm, tok.clone())
            .parallelism(Parallelism::Serial)
            .build()
            .unwrap();
        let sharded = Relm::builder(&lm, tok.clone())
            .parallelism(Parallelism::sharded(threads))
            .build()
            .unwrap();
        for q in [&query, &sampling] {
            let a: Vec<MatchResult> = serial.search(q).unwrap().take(4).collect();
            let b: Vec<MatchResult> = sharded.search(q).unwrap().take(4).collect();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.text, &y.text);
                prop_assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
            }
        }
    }
}
