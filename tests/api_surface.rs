//! Public-API surface snapshot: the facade's re-export list is part of
//! the contract. Adding a name is a deliberate act (update the snapshot
//! in the same commit); *losing* a name is a breaking change this test
//! turns into a build failure instead of a downstream surprise.
//!
//! The test parses `src/lib.rs` textually — Rust has no reflection over
//! re-exports — so it also pins the facade's structure: every public
//! name must come from a `pub use` (or the two `pub mod` namespaces).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::Path;

/// Names re-exported by every `pub use ...::{...}` (or single-name
/// `pub use ...::name;`) item in the facade, plus `pub mod` namespaces.
fn exported_names(source: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    // Strip line comments (doc comments included) first.
    let code: String = source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut rest = code.as_str();
    while let Some(start) = rest.find("pub use ") {
        let after = &rest[start + "pub use ".len()..];
        let end = after.find(';').expect("unterminated pub use");
        let item = &after[..end];
        let leaf_list = match item.find('{') {
            Some(brace) => item[brace + 1..].trim_end_matches('}').to_string(),
            None => item
                .rsplit("::")
                .next()
                .expect("path has a leaf")
                .to_string(),
        };
        for name in leaf_list.split(',') {
            let name = name.trim();
            // Glob re-exports only occur inside the `pub mod` namespace
            // wrappers, which the snapshot tracks as `mod <name>`.
            if !name.is_empty() && name != "*" {
                names.insert(name.to_string());
            }
        }
        rest = &after[end..];
    }
    let mut rest = code.as_str();
    while let Some(start) = rest.find("pub mod ") {
        let after = &rest[start + "pub mod ".len()..];
        let end = after
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(after.len());
        names.insert(format!("mod {}", &after[..end]));
        rest = &after[end..];
    }
    names
}

#[test]
fn facade_reexport_list_matches_snapshot() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lib.rs");
    let source = std::fs::read_to_string(path).expect("facade source readable");
    let actual = exported_names(&source);

    let expected: BTreeSet<String> = [
        // namespaces
        "mod datasets",
        "mod serve",
        "mod stats",
        // relm-automata
        "ascii_alphabet",
        "byte_alphabet",
        "concat",
        "dfa_to_dot",
        "levenshtein_within",
        "nfa_to_dot",
        "prefix_closure",
        "reverse",
        "str_symbols",
        "symbols_to_string",
        "Dfa",
        "Fst",
        "Nfa",
        "Parallelism",
        "ShardIndex",
        "ShardedDfa",
        "StateId",
        "Symbol",
        "WalkChoice",
        "WalkTable",
        "WorkerPool",
        // relm-bpe
        "pretokenize",
        "BpeTokenizer",
        "TokenId",
        // relm-core: the client API
        "Relm",
        "RelmBuilder",
        "QuerySet",
        "QuerySpec",
        "QueryOutcome",
        "QuerySetReport",
        // relm-core: the open-world driver behind the serving layer
        "QueryCompletion",
        "QueryDriver",
        "QueryId",
        // relm-core: queries, plans, sessions
        "compiler",
        "explain",
        "CompiledSearch",
        "ExecutionStats",
        "FilterPreprocessor",
        "LevenshteinPreprocessor",
        "MachineShape",
        "MatchResult",
        "PlanSource",
        "PrefixSampling",
        "Preprocessor",
        "QueryPlan",
        "QueryString",
        "RelmError",
        "RelmErrorKind",
        "RelmSession",
        "SearchQuery",
        "SearchResults",
        "SearchStrategy",
        "SessionConfig",
        "SessionStats",
        "Speculation",
        "TickQuantum",
        "TokenizationStrategy",
        // relm-core: deprecated one-shot shims (removal is a major)
        "execute",
        "plan",
        "search",
        // relm-lm
        "fan_out_scores",
        "perplexity",
        "pooled_scores",
        "sample_sequence",
        "score_batch",
        "sequence_log_prob",
        "top_k_accuracy",
        "AcceleratorSim",
        "CachedLm",
        "DecodingPolicy",
        "ForwardKernel",
        "LanguageModel",
        "NGramConfig",
        "NGramLm",
        "NeuralLm",
        "NeuralLmConfig",
        "ScoringEngine",
        "ScoringMode",
        "ScoringStats",
        "SharedCacheStats",
        "SharedScoringCache",
        // relm-regex
        "disjunction_of",
        "escape",
        "Regex",
        // relm-store: the warm-artifact store
        "ArtifactKey",
        "CacheArtifact",
        "PlanArtifact",
        "PlanStore",
        "StoreError",
        "FORMAT_VERSION",
    ]
    .into_iter()
    .map(String::from)
    .collect();

    let missing: Vec<&String> = expected.difference(&actual).collect();
    let unexpected: Vec<&String> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "facade surface drifted.\n  missing (breaking!): {missing:?}\n  \
         unexpected (update the snapshot deliberately): {unexpected:?}"
    );
}

/// The new client API really is reachable through the facade (a
/// compile-time check that the snapshot names resolve).
#[test]
fn client_api_resolves_through_the_facade() {
    fn assert_type<T>() {}
    assert_type::<relm::Relm<relm::NGramLm>>();
    assert_type::<relm::RelmBuilder<relm::NGramLm>>();
    assert_type::<relm::QuerySet>();
    assert_type::<relm::QuerySpec>();
    assert_type::<relm::QueryOutcome>();
    assert_type::<relm::QuerySetReport>();
    assert_type::<relm::RelmErrorKind>();
}
