//! Integration and property tests for the persistent `RelmSession`
//! runtime: warm-session results must be **byte-identical** to
//! cold-session (stateless `search`) results for all three executors,
//! the plan memo and shared scoring cache must report their reuse, and
//! neither eviction pressure nor a model swap (generation bump) may ever
//! serve a stale or cross-model distribution.

#![forbid(unsafe_code)]
// These tests compare the session against the deprecated one-shot shims
// on purpose: the shims are the byte-identical reference path.
#![allow(deprecated)]

use proptest::prelude::*;
use relm::{
    search, BpeTokenizer, DecodingPolicy, MatchResult, NGramConfig, NGramLm, Preprocessor,
    QueryString, RelmSession, SearchQuery, SearchStrategy, SessionConfig,
};

fn fixture() -> (BpeTokenizer, NGramLm) {
    let docs = [
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
        "my phone number is 555 555 5555",
        "my phone number is 555 867 5309",
    ];
    let corpus = docs.join(". ");
    let tok = BpeTokenizer::train(&corpus, 120);
    let lm = NGramLm::train(&tok, &docs, NGramConfig::xl());
    (tok, lm)
}

/// Exact comparison including the f64 score bits: "byte-identical".
fn assert_identical(a: &[MatchResult], b: &[MatchResult], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.tokens, y.tokens, "{label}: tokens differ");
        assert_eq!(x.text, y.text, "{label}: text differs");
        assert_eq!(x.prefix_len, y.prefix_len, "{label}: prefix_len differs");
        assert_eq!(x.canonical, y.canonical, "{label}: canonical differs");
        assert_eq!(
            x.log_prob.to_bits(),
            y.log_prob.to_bits(),
            "{label}: log_prob bits differ ({} vs {})",
            x.log_prob,
            y.log_prob
        );
    }
}

fn strategies() -> [(&'static str, SearchStrategy); 3] {
    [
        ("dijkstra", SearchStrategy::ShortestPath),
        ("beam", SearchStrategy::Beam { width: 16 }),
        ("sampling", SearchStrategy::RandomSampling { seed: 41 }),
    ]
}

#[test]
fn warm_session_is_byte_identical_to_cold_for_all_executors() {
    let (tok, lm) = fixture();
    let session = RelmSession::new(&lm, tok.clone());
    for (label, strategy) in strategies() {
        let query = SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_policy(DecodingPolicy::top_k(40))
        .with_strategy(strategy);
        let cold: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(10).collect();
        // First session pass: plans compile, cache fills.
        let first: Vec<MatchResult> = session.search(&query).unwrap().take(10).collect();
        // Second pass: plan memo hit + warm scoring cache.
        let mut warm_iter = session.search(&query).unwrap();
        let warm: Vec<MatchResult> = (&mut warm_iter).take(10).collect();
        assert!(!cold.is_empty(), "{label}: fixture must produce matches");
        assert_identical(&cold, &first, &format!("{label} cold-vs-first"));
        assert_identical(&cold, &warm, &format!("{label} cold-vs-warm"));
        let stats = warm_iter.stats();
        assert!(
            stats.plan_cache_hits > 0,
            "{label}: warm pass must hit the plan memo: {stats:?}"
        );
    }
    let stats = session.stats();
    // The traversal strategy is an execution flag, not part of the plan
    // key: all three executors share ONE compilation of this pattern.
    assert_eq!(stats.plan_misses, 1, "{stats:?}");
    assert_eq!(stats.plan_hits, 5, "{stats:?}");
    assert!(stats.scoring.hits > 0, "{stats:?}");
}

#[test]
fn warm_session_matches_cold_under_preprocessors_and_all_encodings() {
    let (tok, lm) = fixture();
    let session = RelmSession::new(&lm, tok.clone());
    let query = SearchQuery::new(QueryString::new("the cat"))
        .with_tokenization(relm::TokenizationStrategy::All)
        .with_preprocessor(Preprocessor::levenshtein(1))
        .with_max_tokens(12);
    let cold: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(15).collect();
    let _ = session.search(&query).unwrap().take(15).count();
    let warm: Vec<MatchResult> = session.search(&query).unwrap().take(15).collect();
    assert!(!cold.is_empty());
    assert_identical(&cold, &warm, "levenshtein+all-encodings");
    assert_eq!(session.stats().plan_hits, 1);
}

#[test]
fn eviction_pressure_never_changes_results() {
    let (tok, lm) = fixture();
    // A scoring cache so small that eviction churns constantly (one
    // distribution is vocab_size * 8 bytes).
    let tiny = SessionConfig::new()
        .with_scoring_cache_bytes((lm.vocab_size() * 8 + 256) * 4)
        .with_plan_memo_capacity(2);
    let session = RelmSession::with_config(&lm, tok.clone(), tiny);
    for (label, strategy) in strategies() {
        let query = SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_strategy(strategy);
        let cold: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(10).collect();
        for round in 0..3 {
            let warm: Vec<MatchResult> = session.search(&query).unwrap().take(10).collect();
            assert_identical(&cold, &warm, &format!("{label} round {round}"));
        }
    }
    let stats = session.stats();
    assert!(
        stats.scoring.evictions > 0,
        "the tiny budget must force evictions: {stats:?}"
    );
    assert!(
        stats.scoring.bytes <= stats.scoring.max_bytes,
        "budget respected: {stats:?}"
    );
}

#[test]
fn model_swap_never_serves_cross_model_distributions() {
    let (tok, _) = fixture();
    let cat_docs = ["the cat sat on the mat", "the cat sat on the mat"];
    let dog_docs = ["the dog sat on the log", "the dog sat on the log"];
    let cat_lm = NGramLm::train(&tok, &cat_docs, NGramConfig::xl());
    let dog_lm = NGramLm::train(&tok, &dog_docs, NGramConfig::xl());
    let query = SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat").with_prefix("the"));

    let mut session = RelmSession::new(&cat_lm, tok.clone());
    let warm_cat: Vec<MatchResult> = session.search(&query).unwrap().take(2).collect();
    // Warm the cache thoroughly, then swap models.
    let _ = session.search(&query).unwrap().take(2).count();
    let old = session.swap_model(&dog_lm).unwrap();
    assert!(std::ptr::eq(old, &cat_lm));

    let after_swap: Vec<MatchResult> = session.search(&query).unwrap().take(2).collect();
    // Ground truth: a fresh session over the dog model.
    let fresh = RelmSession::new(&dog_lm, tok.clone());
    let expected: Vec<MatchResult> = fresh.search(&query).unwrap().take(2).collect();
    assert_identical(&expected, &after_swap, "post-swap vs fresh dog session");
    assert_eq!(after_swap[0].text, "the dog sat");
    assert_eq!(warm_cat[0].text, "the cat sat");
    // Plans survived the swap (they depend only on the tokenizer).
    assert!(session.stats().plan_hits >= 2, "{:?}", session.stats());
}

#[test]
fn plan_and_execute_split_reuses_one_compilation() {
    let (tok, lm) = fixture();
    let session = RelmSession::new(&lm, tok.clone());
    let query = SearchQuery::new(
        QueryString::new("my phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})")
            .with_prefix("my phone number is"),
    )
    .with_policy(DecodingPolicy::top_k(40));
    let plan = session.plan(&query).unwrap();
    assert!(plan.body_states() > 1);
    let a: Vec<MatchResult> = session.execute(&plan).unwrap().take(3).collect();
    let b: Vec<MatchResult> = session.execute(&plan).unwrap().take(3).collect();
    assert!(!a.is_empty());
    assert_identical(&a, &b, "repeated execute of one plan");
    // The stateless plan/execute pair agrees too.
    let stateless_plan = relm::plan(&query, &tok, lm.max_sequence_len()).unwrap();
    let c: Vec<MatchResult> = relm::execute(&lm, &tok, &stateless_plan)
        .unwrap()
        .take(3)
        .collect();
    assert_identical(&a, &c, "session vs stateless plan/execute");
    assert_eq!(session.stats().plan_misses, 1);
}

#[test]
fn stale_plan_is_rejected_after_tokenizer_swap() {
    let (tok, lm) = fixture();
    let retrained = BpeTokenizer::train("completely different corpus text here", 40);
    let mut session = RelmSession::new(&lm, tok.clone());
    let query = SearchQuery::new(QueryString::new("the cat"));
    let plan = session.plan(&query).unwrap();
    assert!(session.execute(&plan).is_ok(), "plan valid before the swap");
    let _ = session.swap_tokenizer(retrained).unwrap();
    let err = session.execute(&plan);
    assert!(
        err.is_err(),
        "a plan compiled over the old tokenizer's ids must be refused"
    );
    // Stateless execute enforces the same guard.
    let err = relm::execute(&lm, session.tokenizer(), &plan);
    assert!(err.is_err());
}

#[test]
fn vocab_mismatch_swaps_are_refused() {
    let (tok, lm) = fixture();
    let mut session = RelmSession::new(&lm, tok.clone());
    // A tokenizer with more merges than the model was trained against
    // has a larger vocabulary: compiled automata would emit token ids
    // the model has no distribution entry for. (Built from an explicit
    // merge table — training on a small corpus exhausts useful merges.)
    let merges: Vec<(relm::TokenId, relm::TokenId)> =
        (0..200u32).map(|i| (i % 256, i / 256)).collect();
    let bigger = BpeTokenizer::from_merges(&merges);
    assert!(bigger.vocab_size() > lm.vocab_size());
    assert!(session.swap_tokenizer(bigger).is_err());
    // Session still works with its original pairing.
    let query = SearchQuery::new(QueryString::new("the cat"));
    assert!(session.search(&query).is_ok());
    // A model with a smaller vocabulary than the tokenizer is refused.
    let tiny_tok = BpeTokenizer::train("ab", 2);
    let tiny_lm = NGramLm::train(&tiny_tok, &["ab"], NGramConfig::xl());
    assert!(tiny_lm.vocab_size() < tok.vocab_size());
    let mut borrowed = RelmSession::new(&lm, tok.clone());
    assert!(borrowed.swap_model(&tiny_lm).is_err());
}

#[test]
fn max_tokens_sweep_shares_one_walk_table_and_stays_identical() {
    let (tok, lm) = fixture();
    let session = RelmSession::new(&lm, tok.clone());
    // Sampling queries over one memoized plan with varying budgets: the
    // walk table is rebuilt only when the budget grows, and results
    // still match the stateless path exactly.
    for budget in [24usize, 8, 16, 24, 12] {
        let query = SearchQuery::new(
            QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))").with_prefix("the"),
        )
        .with_strategy(SearchStrategy::RandomSampling { seed: 9 })
        .with_max_tokens(budget);
        let cold: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(6).collect();
        let warm: Vec<MatchResult> = session.search(&query).unwrap().take(6).collect();
        assert_identical(&cold, &warm, &format!("budget {budget}"));
    }
    assert_eq!(
        session.stats().plan_misses,
        1,
        "one compilation for the sweep"
    );
}

use relm::LanguageModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random pattern family × every executor: a warm session pass is
    /// byte-identical to the stateless cold path.
    #[test]
    fn warm_equals_cold_for_random_queries(
        animal_a in prop_oneof![Just("cat"), Just("dog"), Just("cow")],
        animal_b in prop_oneof![Just("cat"), Just("dog"), Just("cow")],
        verb in prop_oneof![Just("sat"), Just("ate")],
        k in prop_oneof![Just(5usize), Just(40usize)],
        strategy_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let (tok, lm) = fixture();
        let strategy = match strategy_idx {
            0 => SearchStrategy::ShortestPath,
            1 => SearchStrategy::Beam { width: 8 },
            _ => SearchStrategy::RandomSampling { seed },
        };
        let pattern = format!("the (({animal_a})|({animal_b})) {verb}");
        let query = SearchQuery::new(QueryString::new(pattern).with_prefix("the"))
            .with_policy(DecodingPolicy::top_k(k))
            .with_strategy(strategy);
        let cold: Vec<MatchResult> = search(&lm, &tok, &query).unwrap().take(8).collect();
        let session = RelmSession::new(&lm, tok.clone());
        let _ = session.search(&query).unwrap().take(8).count(); // fill
        let warm: Vec<MatchResult> = session.search(&query).unwrap().take(8).collect();
        prop_assert_eq!(cold.len(), warm.len());
        for (x, y) in cold.iter().zip(&warm) {
            prop_assert_eq!(&x.tokens, &y.tokens);
            prop_assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
        }
    }
}
