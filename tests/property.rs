//! Property-based tests (proptest) over the core invariants that the
//! whole system rests on:
//!
//! * the regex front end and the automaton membership agree,
//! * determinization/minimization preserve languages,
//! * every tokenization enumerated by the BPE decodes to its source,
//! * the full-encoding token automaton accepts exactly the tokenizations
//!   of the query language,
//! * walk counts match brute-force enumeration,
//! * Levenshtein automata agree with the brute-force edit distance.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use relm::{
    compiler::compile_full, levenshtein_within, str_symbols, BpeTokenizer, Nfa, Regex, TokenId,
    WalkTable,
};

/// A strategy generating simple-but-structured regex patterns over a
/// small alphabet, together with strings likely to probe them.
fn simple_pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        "[abc]{1,3}".prop_map(|s| s),
        Just("a".to_string()),
        Just("bc".to_string()),
        Just("(a)|(b)".to_string()),
        Just("a?".to_string()),
        Just("(ab)*".to_string()),
        Just("c{1,2}".to_string()),
    ];
    proptest::collection::vec(atom, 1..4).prop_map(|parts| parts.concat())
}

fn abc_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('a'), Just('b'), Just('c')], 0..8)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NFA membership (subset simulation) agrees with the minimized DFA.
    #[test]
    fn nfa_and_min_dfa_agree(pattern in simple_pattern(), input in abc_string()) {
        let re = Regex::compile(&pattern).unwrap();
        let nfa_says = re.nfa().contains(str_symbols(&input));
        let dfa_says = re.dfa().contains(str_symbols(&input));
        prop_assert_eq!(nfa_says, dfa_says, "pattern {} input {}", pattern, input);
    }

    /// Minimization is idempotent and preserves the language.
    #[test]
    fn minimize_preserves_language(pattern in simple_pattern()) {
        let re = Regex::compile(&pattern).unwrap();
        let d = re.nfa().determinize();
        let m = d.minimize();
        prop_assert!(d.equivalent(&m));
        let mm = m.minimize();
        prop_assert!(m.equivalent(&mm));
        prop_assert!(mm.state_count() <= m.state_count());
    }

    /// Product operations implement boolean set algebra on membership.
    #[test]
    fn products_are_boolean_algebra(
        p1 in simple_pattern(),
        p2 in simple_pattern(),
        input in abc_string(),
    ) {
        let a = Regex::compile(&p1).unwrap().dfa().clone();
        let b = Regex::compile(&p2).unwrap().dfa().clone();
        let s = str_symbols(&input);
        let in_a = a.contains(s.iter().copied());
        let in_b = b.contains(s.iter().copied());
        prop_assert_eq!(a.intersect(&b).contains(s.iter().copied()), in_a && in_b);
        prop_assert_eq!(a.union(&b).contains(s.iter().copied()), in_a || in_b);
        prop_assert_eq!(a.difference(&b).contains(s.iter().copied()), in_a && !in_b);
    }

    /// Every enumerated tokenization decodes to the source string, the
    /// canonical encoding is among them, and none is shorter than the
    /// canonical one.
    #[test]
    fn tokenizations_decode_and_canonical_is_shortest(text in "[ab ]{1,8}") {
        let tok = BpeTokenizer::train("ab ab abab ba ba baba a b aa bb", 30);
        let all = tok.all_encodings(&text, 4096);
        let canonical = tok.encode(&text);
        prop_assert!(all.contains(&canonical));
        for enc in &all {
            prop_assert_eq!(tok.decode(enc), text.clone());
            prop_assert!(enc.len() >= canonical.len());
        }
        prop_assert_eq!(all.len() as u128, tok.count_encodings(&text));
    }

    /// The full-encoding automaton of a literal accepts exactly that
    /// string's tokenizations.
    #[test]
    fn full_automaton_equals_tokenization_set(text in "[ab]{1,6}") {
        let tok = BpeTokenizer::train("ab ab abab ba ba baba aa bb", 30);
        let re = Regex::compile(&text).unwrap();
        let full = compile_full(re.dfa(), &tok);
        let mut automaton_paths: Vec<Vec<TokenId>> = full
            .enumerate(16, 100_000)
            .into_iter()
            .map(|p| p.into_iter().map(|s| s as TokenId).collect())
            .collect();
        let mut expected = tok.all_encodings(&text, 100_000);
        automaton_paths.sort();
        expected.sort();
        prop_assert_eq!(automaton_paths, expected);
    }

    /// Walk counting equals brute-force enumeration on small automata.
    #[test]
    fn walk_counts_match_enumeration(pattern in simple_pattern()) {
        let re = Regex::compile(&pattern).unwrap();
        let dfa = re.dfa().clone();
        let max_len = 6;
        let table = WalkTable::new(&dfa, max_len);
        let enumerated = dfa.enumerate(max_len, 1_000_000).len() as f64;
        let counted = table.count(dfa.start(), max_len);
        prop_assert!((enumerated - counted).abs() < 0.5,
            "pattern {}: enumerated {} vs counted {}", pattern, enumerated, counted);
    }

    /// The Levenshtein automaton agrees with brute-force edit distance.
    #[test]
    fn levenshtein_automaton_is_sound(word in "[ab]{1,5}", probe in "[ab]{0,6}") {
        fn edit_distance(a: &[u8], b: &[u8]) -> usize {
            let mut dp: Vec<usize> = (0..=b.len()).collect();
            for (i, &ca) in a.iter().enumerate() {
                let mut prev = dp[0];
                dp[0] = i + 1;
                for (j, &cb) in b.iter().enumerate() {
                    let cur = dp[j + 1];
                    dp[j + 1] = if ca == cb { prev } else { 1 + prev.min(dp[j]).min(dp[j + 1]) };
                    prev = cur;
                }
            }
            dp[b.len()]
        }
        let alphabet: Vec<u32> = vec![u32::from(b'a'), u32::from(b'b')];
        let lang = Nfa::literal(str_symbols(&word));
        let within = levenshtein_within(&lang, 1, &alphabet).determinize();
        let expected = edit_distance(word.as_bytes(), probe.as_bytes()) <= 1;
        prop_assert_eq!(
            within.contains(str_symbols(&probe)),
            expected,
            "word {} probe {}", word, probe
        );
    }

    /// Regex escaping round-trips arbitrary printable text.
    #[test]
    fn escape_round_trips(text in "[ -~]{0,12}") {
        let re = Regex::compile(&relm::escape(&text)).unwrap();
        prop_assert!(re.is_match(&text));
    }
}
