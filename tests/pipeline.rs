//! Cross-crate integration tests: the full regex → automaton → token
//! compilation → execution pipeline, exercised end-to-end through the
//! `relm` facade.

#![forbid(unsafe_code)]

use relm::{
    BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor, QueryString, Regex, Relm,
    SearchQuery, SearchStrategy, TokenizationStrategy,
};

fn fixture() -> Relm<NGramLm> {
    let docs = [
        "George Washington was born on February 22, 1732",
        "George Washington was born on February 22, 1732",
        "Abraham Lincoln was born on February 12, 1809",
        "the first president led the army across the river",
    ];
    let corpus = docs.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 250);
    let model = NGramLm::train(&tokenizer, &docs, NGramConfig::xl());
    Relm::new(model, tokenizer).expect("fixture builds")
}

const DATE_QUERY: &str = "George Washington was born on ((January)|(February)|(March)|(April)|(May)|(June)|(July)|(August)|(September)|(October)|(November)|(December)) [0-9]{1,2}, [0-9]{4}";

#[test]
fn figure_11_birth_date_query() {
    let client = fixture();
    let query =
        SearchQuery::new(QueryString::new(DATE_QUERY).with_prefix("George Washington was born on"))
            .with_policy(DecodingPolicy::top_k(1000));
    let results: Vec<_> = client.search(&query).unwrap().take(3).collect();
    assert!(!results.is_empty());
    // The memorized (correct) date must rank first among all dates.
    assert_eq!(
        results[0].text,
        "George Washington was born on February 22, 1732"
    );
    // Every result is a well-formed date string from the query language.
    let re = Regex::compile(DATE_QUERY).unwrap();
    for r in &results {
        assert!(re.is_match(&r.text), "out of language: {:?}", r.text);
    }
}

#[test]
fn all_matches_lie_in_the_query_language() {
    let client = fixture();
    for tokenization in [TokenizationStrategy::Canonical, TokenizationStrategy::All] {
        let query = SearchQuery::new(QueryString::new("(Feb)|(February [0-9]{2})"))
            .with_tokenization(tokenization)
            .with_max_tokens(16);
        let re = Regex::compile("(Feb)|(February [0-9]{2})").unwrap();
        for m in client.search(&query).unwrap().take(20) {
            assert!(re.is_match(&m.text), "{tokenization:?}: {:?}", m.text);
        }
    }
}

#[test]
fn shortest_path_order_is_nonincreasing_probability() {
    let client = fixture();
    let query = SearchQuery::new(QueryString::new("February [0-9]{2}")).with_max_tokens(16);
    let results: Vec<_> = client.search(&query).unwrap().take(25).collect();
    assert!(results.len() > 2);
    for w in results.windows(2) {
        assert!(
            w[0].log_prob >= w[1].log_prob - 1e-9,
            "{} before {}",
            w[0].log_prob,
            w[1].log_prob
        );
    }
}

#[test]
fn canonical_results_round_trip_through_tokenizer() {
    let client = fixture();
    let query = SearchQuery::new(QueryString::new("February [0-9]{2}"))
        .with_tokenization(TokenizationStrategy::Canonical)
        .with_max_tokens(16);
    for m in client.search(&query).unwrap().take(10) {
        assert!(
            m.canonical,
            "canonical query emitted non-canonical {:?}",
            m.text
        );
        assert_eq!(client.tokenizer().encode(&m.text), m.tokens);
    }
}

#[test]
fn sampling_respects_language_and_seed() {
    let client = fixture();
    let mk = |seed| {
        SearchQuery::new(
            QueryString::new("George Washington was born on February [0-9]{2}, [0-9]{4}")
                .with_prefix("George Washington was born on"),
        )
        .with_strategy(SearchStrategy::RandomSampling { seed })
    };
    let a: Vec<String> = client
        .search(&mk(9))
        .unwrap()
        .take(8)
        .map(|m| m.text)
        .collect();
    let b: Vec<String> = client
        .search(&mk(9))
        .unwrap()
        .take(8)
        .map(|m| m.text)
        .collect();
    assert_eq!(a, b);
    let re = Regex::compile("George Washington was born on February [0-9]{2}, [0-9]{4}").unwrap();
    for t in &a {
        assert!(re.is_match(t), "{t:?}");
    }
}

#[test]
fn levenshtein_preprocessor_expands_the_match_set() {
    let client = fixture();
    // Misspelled month: only reachable with an edit.
    let pattern = "George Washington was born on Febuary 22, 1732";
    let strict = SearchQuery::new(QueryString::new(pattern)).with_max_tokens(32);
    let relaxed = SearchQuery::new(QueryString::new(pattern))
        .with_preprocessor(Preprocessor::levenshtein(1))
        .with_max_tokens(32)
        .with_max_expansions(50_000);
    let strict_best = client
        .search(&strict)
        .unwrap()
        .next()
        .map(|m| m.log_prob)
        .unwrap_or(f64::NEG_INFINITY);
    let relaxed_best = client
        .search(&relaxed)
        .unwrap()
        .next()
        .map(|m| m.log_prob)
        .unwrap_or(f64::NEG_INFINITY);
    // The edited neighborhood contains the correctly spelled (memorized)
    // string, which the model scores far higher.
    assert!(
        relaxed_best > strict_best,
        "relaxed {relaxed_best} vs strict {strict_best}"
    );
}

#[test]
fn empty_intersection_reports_error() {
    let client = fixture();
    let stop = Regex::compile("x").unwrap().dfa().clone();
    let query =
        SearchQuery::new(QueryString::new("x")).with_preprocessor(Preprocessor::filter(stop));
    assert!(client.search(&query).is_err());
}

#[test]
fn prefix_must_prefix_the_language() {
    let client = fixture();
    let query = SearchQuery::new(QueryString::new("February [0-9]{2}").with_prefix("Lincoln"));
    let err = client.search(&query).err().expect("error");
    assert!(err.to_string().contains("prefix"), "{err}");
}
