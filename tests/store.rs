//! The warm-artifact store's contract: a plan loaded from disk executes
//! **bit-for-bit identically** (f64 bits included) to a fresh compile —
//! across all three executors, under sharded parallelism, through
//! `run_many`, and over the served TCP path — even when the artifact
//! was written by a *different process* (the `relm_store` bin). Also:
//! memo-evicted plans restore from disk instead of recompiling, and
//! corrupted artifacts fail closed into compilation.

#![forbid(unsafe_code)]

use std::process::Command;

use relm::serve::{spawn, QueryRequest, RelmServer, ServerConfig};
use relm::{
    BpeTokenizer, NGramConfig, NGramLm, Parallelism, QuerySet, QueryString, Relm, SearchQuery,
    SearchStrategy, SessionConfig,
};

/// The deterministic demonstration corpus the `relm_store` and
/// `relm_server` bins train — training here with the same inputs yields
/// the same tokenizer fingerprint, which is what makes bin-written
/// artifacts loadable in-process.
const DOCS: [&str; 4] = [
    "the cat sat on the mat",
    "the cat sat on the mat",
    "the dog sat on the log",
    "the cow ate the grass",
];

fn fixture() -> (BpeTokenizer, NGramLm) {
    let corpus = DOCS.join(". ");
    let tok = BpeTokenizer::train(&corpus, 80);
    let lm = NGramLm::train(&tok, &DOCS, NGramConfig::xl());
    (tok, lm)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("relm-store-test-{tag}-{}", std::process::id()))
}

/// Run the `relm_store` bin — the cross-process half of these tests.
fn relm_store(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_relm_store"))
        .args(args)
        .output()
        .expect("relm_store bin runs")
}

/// The identity currency: `(text, exact score bits)` per match.
fn bits(matches: &[relm::MatchResult]) -> Vec<(String, u64)> {
    matches
        .iter()
        .map(|m| (m.text.clone(), m.log_prob.to_bits()))
        .collect()
}

#[test]
fn cross_process_warm_equals_cold_for_all_three_executors() {
    let dir = temp_dir("executors");
    let _ = std::fs::remove_dir_all(&dir);
    let pattern = "the ((cat)|(dog)) sat on the ((mat)|(log))";
    let prefix = "the ((cat)|(dog))";

    // Another process compiles (and executes, materializing the walk
    // table) the plan and persists it.
    let out = relm_store(&[
        "compile",
        dir.to_str().unwrap(),
        "--prefix",
        prefix,
        "--take",
        "2",
        pattern,
    ]);
    assert!(
        out.status.success(),
        "relm_store compile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let strategies = [
        SearchStrategy::ShortestPath,
        SearchStrategy::Beam { width: 16 },
        SearchStrategy::RandomSampling { seed: 7 },
    ];
    for strategy in strategies {
        let query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix))
            .with_strategy(strategy)
            .with_max_tokens(20);

        // Cold: fresh compile, no store anywhere near it.
        let (tok, lm) = fixture();
        let cold = Relm::builder(lm, tok)
            .config(SessionConfig::new().with_parallelism(Parallelism::sharded(4)))
            .build()
            .unwrap();
        let cold_bits = bits(&cold.search(&query).unwrap().take(3).collect::<Vec<_>>());

        // Disk-warm: a fresh process-equivalent session restoring the
        // bin-written artifact on its first (memo-missing) plan.
        let (tok, lm) = fixture();
        let warm = Relm::builder(lm, tok)
            .config(
                SessionConfig::new()
                    .with_parallelism(Parallelism::sharded(4))
                    .with_plan_store(&dir),
            )
            .build()
            .unwrap();
        let warm_bits = bits(&warm.search(&query).unwrap().take(3).collect::<Vec<_>>());
        let stats = warm.stats();
        assert_eq!(stats.store_hits, 1, "served from the bin's artifact");
        assert_eq!(stats.plan_misses, 1, "no recompilation");
        assert_eq!(cold_bits, warm_bits, "strategy {strategy:?} diverged");
        assert!(!warm_bits.is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_process_warm_equals_cold_through_run_many() {
    let dir = temp_dir("run-many");
    let _ = std::fs::remove_dir_all(&dir);
    let out = relm_store(&["compile", dir.to_str().unwrap()]);
    assert!(out.status.success());

    let set = QuerySet::new()
        .with_query(
            SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat")),
            2,
        )
        .with_query(SearchQuery::new(QueryString::new("the cow ate")), 1)
        .with_query(
            SearchQuery::new(QueryString::new("the ((cat)|(cow)) ((sat)|(ate))"))
                .with_strategy(SearchStrategy::RandomSampling { seed: 5 })
                .with_max_tokens(16),
            3,
        );

    let (tok, lm) = fixture();
    let cold = Relm::builder(lm, tok)
        .config(SessionConfig::new().with_parallelism(Parallelism::sharded(4)))
        .build()
        .unwrap();
    let cold_report = cold.run_many(&set).unwrap();

    let (tok, lm) = fixture();
    let warm = Relm::builder(lm, tok)
        .config(
            SessionConfig::new()
                .with_parallelism(Parallelism::sharded(4))
                .with_plan_store(&dir),
        )
        .build()
        .unwrap();
    let warm_report = warm.run_many(&set).unwrap();

    assert_eq!(warm.stats().store_hits, 3, "all three plans from disk");
    for (c, w) in cold_report.outcomes.iter().zip(&warm_report.outcomes) {
        assert_eq!(bits(&c.matches), bits(&w.matches));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_tcp_path_is_byte_identical_from_a_bin_written_store() {
    let dir = temp_dir("serve");
    let _ = std::fs::remove_dir_all(&dir);
    let out = relm_store(&["compile", dir.to_str().unwrap()]);
    assert!(out.status.success());

    // Solo reference over an identically trained model, storeless.
    let (tok, lm) = fixture();
    let solo = Relm::new(lm, tok).unwrap();
    let request = QueryRequest::new(1, "the ((cat)|(dog)) sat", 2);
    let expected = bits(
        &solo
            .search(&request.to_search_query())
            .unwrap()
            .take(2)
            .collect::<Vec<_>>(),
    );

    // A server booted disk-warm from the bin-written store.
    let (tok, lm) = fixture();
    let client = Relm::builder(lm, tok)
        .config(SessionConfig::new().with_plan_store(&dir))
        .build()
        .unwrap();
    let server = RelmServer::with_config(
        client,
        ServerConfig::new()
            .with_preload_store(true)
            .with_flush_store(true),
    );
    let handle = spawn(server, "127.0.0.1:0").unwrap();
    let mut conn = relm::serve::ServeClient::connect(handle.addr()).unwrap();
    conn.send(&relm::serve::Request::Query(request)).unwrap();
    let response = conn.recv().unwrap();
    let served = match &response {
        relm::serve::Response::Matches { matches, .. } => matches
            .iter()
            .map(|m| (m.text.clone(), m.score_bits))
            .collect::<Vec<_>>(),
        other => panic!("expected matches, got {other:?}"),
    };
    assert_eq!(served, expected);
    drop(conn);
    let report = handle.stop().unwrap();
    assert_eq!(report.plans_preloaded, 3, "booted warm from the store");
    assert!(report.store_flush_bytes > 0, "flushed on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memo_eviction_restores_from_disk_instead_of_recompiling() {
    let dir = temp_dir("eviction");
    let _ = std::fs::remove_dir_all(&dir);
    let (tok, lm) = fixture();
    let client = Relm::builder(lm, tok)
        .config(
            SessionConfig::new()
                .with_plan_memo_capacity(1)
                .with_plan_store(&dir),
        )
        .build()
        .unwrap();
    let a = SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat"));
    let b = SearchQuery::new(QueryString::new("the cow ate"));
    let first = bits(&client.search(&a).unwrap().take(2).collect::<Vec<_>>());
    let _ = client.search(&b).unwrap().take(1).count(); // evicts `a`
    let again = bits(&client.search(&a).unwrap().take(2).collect::<Vec<_>>());
    assert_eq!(first, again);
    let stats = client.stats();
    assert!(stats.plan_evictions >= 1, "{stats:?}");
    assert_eq!(
        stats.store_hits, 1,
        "the evicted plan came back from disk, not the compiler: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bin_verify_catches_corruption_and_sessions_fall_back() {
    let dir = temp_dir("verify");
    let _ = std::fs::remove_dir_all(&dir);
    let out = relm_store(&["compile", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let verify = relm_store(&["verify", dir.to_str().unwrap()]);
    assert!(verify.status.success(), "pristine store verifies clean");
    let listing = relm_store(&["ls", dir.to_str().unwrap()]);
    assert!(listing.status.success());
    assert!(
        String::from_utf8_lossy(&listing.stdout).contains("3 plan artifacts"),
        "ls reports the compiled plans"
    );

    // Flip one payload byte in every artifact.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
    }
    let verify = relm_store(&["verify", dir.to_str().unwrap()]);
    assert!(
        !verify.status.success(),
        "corrupt store must fail verification"
    );

    // A session over the corrupt store still answers — compilation is
    // the fallback, and the rewrite heals the store.
    let (tok, lm) = fixture();
    let client = Relm::builder(lm, tok)
        .config(SessionConfig::new().with_plan_store(&dir))
        .build()
        .unwrap();
    let query = SearchQuery::new(QueryString::new("the ((cat)|(dog)) sat"));
    let matches: Vec<_> = client.search(&query).unwrap().take(2).collect();
    assert_eq!(matches.len(), 2);
    let stats = client.stats();
    assert_eq!(stats.store_hits, 0);
    assert_eq!(stats.store_misses, 1);
    let verify = relm_store(&["verify", dir.to_str().unwrap()]);
    assert!(
        !verify.status.success(),
        "untouched artifacts are still corrupt"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// N racing threads compiling the same fresh query behind one shared
/// session (the sharded server's exact shape: N shard threads, one
/// plan store) must elect exactly one writer — one artifact, one
/// write-back's worth of bytes, and no stray temp files from losers.
#[test]
fn concurrent_fresh_compiles_write_back_exactly_once() {
    let dir = temp_dir("concurrent-compile");
    let _ = std::fs::remove_dir_all(&dir);
    let (tok, lm) = fixture();
    let shared = Relm::builder(lm, tok)
        .config(SessionConfig::new().with_plan_store(&dir))
        .build()
        .unwrap();
    let query = SearchQuery::new(QueryString::new("the ((cat)|(dog)|(cow)) ((sat)|(ate))"));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                shared.session().plan(&query).unwrap();
            });
        }
    });

    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|entry| entry.unwrap().file_name().into_string().unwrap())
        .collect();
    let plans: Vec<&String> = names.iter().filter(|n| n.starts_with("plan-")).collect();
    assert_eq!(
        plans.len(),
        1,
        "one artifact, not one per winner: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.contains(".tmp")),
        "losing writers must clean up: {names:?}"
    );

    // One write-back's worth of bytes: the same as a solo session
    // compiling the same query once.
    let solo_dir = temp_dir("concurrent-compile-solo");
    let _ = std::fs::remove_dir_all(&solo_dir);
    let (tok, lm) = fixture();
    let solo = Relm::builder(lm, tok)
        .config(SessionConfig::new().with_plan_store(&solo_dir))
        .build()
        .unwrap();
    solo.session().plan(&query).unwrap();
    assert_eq!(
        shared.stats().store_bytes_written,
        solo.stats().store_bytes_written,
        "racing threads wrote more than one back-copy"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&solo_dir);
}
