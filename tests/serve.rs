//! The serving layer's contract: results served over the socket are
//! **byte-identical** (f64 bits included) to solo `Relm::search`
//! execution — under concurrent clients, for queries admitted while
//! others are mid-flight, and regardless of coalescing schedule — and a
//! client that disconnects cancels its in-flight queries instead of
//! pinning server work.
//!
//! Every expected answer is produced by running
//! [`QueryRequest::to_search_query`]'s output through a solo client over
//! an identically trained model: the *same* wire-to-engine mapping the
//! server uses, so the reference and the served query can never drift.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use relm::serve::{
    spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig, StrategySpec,
};
use relm::{BpeTokenizer, NGramConfig, NGramLm, Relm};

const DOCS: [&str; 4] = [
    "the cat sat on the mat",
    "the cat sat on the mat",
    "the dog sat on the log",
    "the cow ate the grass",
];

/// Deterministic model + tokenizer; training twice yields identical
/// artifacts, which is what lets the solo reference and the server hold
/// separate (but equal) model instances.
fn fixture() -> (BpeTokenizer, NGramLm) {
    let corpus = DOCS.join(". ");
    let tok = BpeTokenizer::train(&corpus, 80);
    let lm = NGramLm::train(&tok, &DOCS, NGramConfig::xl());
    (tok, lm)
}

fn solo_client() -> Relm<NGramLm> {
    let (tok, lm) = fixture();
    Relm::new(lm, tok).unwrap()
}

fn start_server() -> relm::serve::ServerHandle {
    let (tok, lm) = fixture();
    let client = Relm::new(lm, tok).unwrap();
    spawn(
        RelmServer::with_config(client, ServerConfig::new()),
        "127.0.0.1:0",
    )
    .unwrap()
}

/// The identity currency: `(text, exact score bits)` per match.
fn solo_bits(client: &Relm<NGramLm>, request: &QueryRequest) -> Vec<(String, u64)> {
    client
        .search(&request.to_search_query())
        .unwrap()
        .take(request.max_results)
        .map(|m| (m.text, m.log_prob.to_bits()))
        .collect()
}

fn served_bits(response: &Response) -> Vec<(String, u64)> {
    match response {
        Response::Matches { matches, .. } => matches
            .iter()
            .map(|m| (m.text.clone(), m.score_bits))
            .collect(),
        other => panic!("expected matches, got {other:?}"),
    }
}

/// The mixed workload: fig5-style extraction (Dijkstra + beam over one
/// pattern family) and fig7-style distribution sampling, as wire
/// requests.
fn mixed_requests(id_base: u64, seed: u64) -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(id_base, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3),
        QueryRequest::new(id_base + 1, "the ((cat)|(dog)) sat on the ((mat)|(log))", 2)
            .with_strategy(StrategySpec::Beam { width: 8 }),
        QueryRequest::new(id_base + 2, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 4)
            .with_strategy(StrategySpec::Sampling { seed })
            .with_max_tokens(16),
        QueryRequest::new(id_base + 3, "the cow ate the grass", 1).with_top_k(40),
    ]
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let solo = solo_client();
    let handle = start_server();
    let addr = handle.addr();

    type ClientAnswers = Vec<(QueryRequest, Vec<(String, u64)>)>;
    // Three concurrent connections, each pipelining a mixed workload
    // (requests all sent before any response is read, so the server's
    // driver interleaves every query through shared coalescing ticks).
    let collected: Vec<ClientAnswers> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0u64..3)
            .map(|t| {
                scope.spawn(move || {
                    let requests = mixed_requests(10 * t, 7 + t);
                    let mut client = ServeClient::connect(addr).unwrap();
                    for request in &requests {
                        client.send(&Request::Query(request.clone())).unwrap();
                    }
                    let mut by_id: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
                    for _ in 0..requests.len() {
                        let response = client.recv().unwrap();
                        let Response::Matches { id, .. } = &response else {
                            panic!("expected matches, got {response:?}");
                        };
                        by_id.insert(*id, served_bits(&response));
                    }
                    requests
                        .into_iter()
                        .map(|request| {
                            let bits = by_id.remove(&request.id).expect("every request answered");
                            (request, bits)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for per_client in &collected {
        for (request, served) in per_client {
            assert_eq!(
                served,
                &solo_bits(&solo, request),
                "served results must be bit-identical to solo for {request:?}"
            );
        }
    }

    let report = handle.stop().unwrap();
    assert_eq!(report.accepted, 3);
    assert_eq!(report.admitted, 12);
    assert_eq!(report.completed, 12);
    assert_eq!(report.cancelled, 0);
    assert!(
        report.cross_query_batches > 0,
        "concurrent admission must coalesce across queries: {report:?}"
    );
}

#[test]
fn queries_admitted_mid_flight_are_bit_identical() {
    let solo = solo_client();
    let handle = start_server();
    let addr = handle.addr();

    // Connection A admits a long sampling stream; while it is ticking,
    // connection B joins with fresh queries. (The deterministic
    // driver-level version of this schedule lives in relm-core's unit
    // tests; here the real server takes the same path over sockets.)
    let slow = QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 40)
        .with_strategy(StrategySpec::Sampling { seed: 123 })
        .with_max_tokens(16);
    let mut conn_a = ServeClient::connect(addr).unwrap();
    conn_a.send(&Request::Query(slow.clone())).unwrap();

    // Give A's query time to be admitted and get mid-flight.
    std::thread::sleep(Duration::from_millis(30));
    let late = mixed_requests(100, 99);
    let mut conn_b = ServeClient::connect(addr).unwrap();
    for request in &late {
        conn_b.send(&Request::Query(request.clone())).unwrap();
    }
    let mut late_answers: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    for _ in 0..late.len() {
        let response = conn_b.recv().unwrap();
        let Response::Matches { id, .. } = &response else {
            panic!("expected matches, got {response:?}");
        };
        late_answers.insert(*id, served_bits(&response));
    }
    let slow_served = served_bits(&conn_a.recv().unwrap());

    assert_eq!(slow_served, solo_bits(&solo, &slow), "the early query");
    for request in &late {
        assert_eq!(
            late_answers.remove(&request.id).unwrap(),
            solo_bits(&solo, request),
            "mid-flight admitted query {request:?}"
        );
    }
    let report = handle.stop().unwrap();
    assert_eq!(report.completed, 5);
}

#[test]
fn client_disconnect_cancels_its_queries() {
    let handle = start_server();
    let addr = handle.addr();

    // A client submits an effectively unbounded sampling stream (the
    // language is tiny, so every episode emits and the stream only ends
    // at the absurd cap), then vanishes without reading a byte.
    {
        let mut doomed = ServeClient::connect(addr).unwrap();
        doomed
            .send(&Request::Query(
                QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 1_000_000)
                    .with_strategy(StrategySpec::Sampling { seed: 5 })
                    .with_max_tokens(16),
            ))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // Dropped here: the connection closes with the query in flight.
    }

    // The server must notice, cancel the orphan, and stay available.
    let mut observer = ServeClient::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let cancelled = loop {
        let Response::Stats(stats) = observer.roundtrip(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        if stats.cancelled >= 1 {
            break stats.cancelled;
        }
        assert!(
            Instant::now() < deadline,
            "server never cancelled the orphaned query: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(cancelled, 1);

    // Availability after the cancel: a fresh query still answers.
    let solo = solo_client();
    let request = QueryRequest::new(9, "the cow ate the grass", 1);
    let served = served_bits(
        &observer
            .roundtrip(&Request::Query(request.clone()))
            .unwrap(),
    );
    assert_eq!(served, solo_bits(&solo, &request));

    let report = handle.stop().unwrap();
    assert_eq!(report.cancelled, 1);
    assert_eq!(report.completed, 1);
}

#[test]
fn bad_patterns_answer_errors_without_killing_the_connection() {
    let handle = start_server();
    let mut client = ServeClient::connect(handle.addr()).unwrap();

    let bad = client
        .roundtrip(&Request::Query(QueryRequest::new(4, "a(", 1)))
        .unwrap();
    let Response::Error { id, message } = bad else {
        panic!("expected an error, got {bad:?}");
    };
    assert_eq!(id, 4);
    assert!(!message.is_empty());

    // The same connection still serves good queries afterwards.
    let good = client
        .roundtrip(&Request::Query(QueryRequest::new(5, "the cow ate", 1)))
        .unwrap();
    assert_eq!(served_bits(&good).len(), 1);

    let report = handle.stop().unwrap();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 1);
}

/// The facade-level driver admits mid-flight deterministically — the
/// socket-free twin of the serve tests above, pinning the exact
/// schedule: admit, tick three times, admit again.
#[test]
fn facade_driver_mid_flight_admission_is_deterministic() {
    let solo = solo_client();
    let early = QueryRequest::new(0, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3);
    let late = QueryRequest::new(1, "the ((cat)|(dog)) sat on the ((mat)|(log))", 2)
        .with_strategy(StrategySpec::Beam { width: 8 });
    let expected_early = solo_bits(&solo, &early);
    let expected_late = solo_bits(&solo, &late);

    let (tok, lm) = fixture();
    let client = Relm::new(lm, tok).unwrap();
    let mut driver = client.driver();
    let early_id = driver
        .admit(&early.to_search_query(), early.max_results)
        .unwrap();
    let mut completions = Vec::new();
    for _ in 0..3 {
        completions.extend(driver.tick());
    }
    let late_id = driver
        .admit(&late.to_search_query(), late.max_results)
        .unwrap();
    while !driver.is_idle() {
        completions.extend(driver.tick());
    }
    let by_id: HashMap<_, _> = completions.into_iter().map(|c| (c.id, c.outcome)).collect();
    let bits = |id| {
        by_id[&id]
            .matches
            .iter()
            .map(|m| (m.text.clone(), m.log_prob.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(early_id), expected_early);
    assert_eq!(bits(late_id), expected_late);
}
