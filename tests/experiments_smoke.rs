//! End-to-end smoke tests asserting the paper's *directional* findings on
//! miniature versions of each evaluation (§4.1–§4.4). These are the
//! repository's acceptance tests: if one fails, the corresponding figure
//! binary will not reproduce the paper's shape.

#![forbid(unsafe_code)]

use relm::datasets::{
    scan_for_insults, stop_words, CorpusSpec, SyntheticWorld, INSULT_LEXICON, PROFESSIONS,
};
use relm::stats::{chi2_independence, EmpiricalDist};
use relm::{
    disjunction_of, escape, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor,
    QueryString, Regex, Relm, SearchQuery, SearchStrategy, TokenizationStrategy,
};

struct World {
    world: SyntheticWorld,
    client: Relm<NGramLm>,
}

fn setup() -> World {
    let mut spec = CorpusSpec::small();
    spec.bias_sentences = 150; // sharpen the planted association
    let world = SyntheticWorld::generate(&spec);
    let corpus = world.joined_corpus();
    let tokenizer = BpeTokenizer::train(&corpus, 250);
    let model = NGramLm::train(&tokenizer, &world.document_refs(), NGramConfig::xl());
    World {
        world,
        client: Relm::new(model, tokenizer).expect("smoke world builds"),
    }
}

/// §4.1 — structured shortest-path extraction finds valid URLs.
#[test]
fn memorization_extracts_valid_urls() {
    let w = setup();
    let query = SearchQuery::new(
        QueryString::new("https://www\\.([a-zA-Z0-9]|_|-|#|%)+\\.([a-zA-Z0-9]|_|-|#|%|/)+")
            .with_prefix("https://www\\."),
    )
    .with_policy(DecodingPolicy::top_k(40))
    .with_max_tokens(24);
    let mut valid = 0;
    for m in w.client.search(&query).unwrap().take(25) {
        if w.world.urls.is_valid(&m.text) {
            valid += 1;
        }
    }
    assert!(valid >= 2, "expected memorized URLs, got {valid}");
}

/// §4.2 — canonical + prefix sampling recovers the planted stereotype
/// direction with a significant χ².
#[test]
fn bias_direction_and_significance() {
    let w = setup();
    let professions: Vec<String> = PROFESSIONS.iter().map(|p| escape(p)).collect();
    let pattern_of = |gender: &str| {
        format!(
            "The {gender} was trained in (({}))\\.",
            professions.join(")|(")
        )
    };
    let mut rows = Vec::new();
    let mut dists = Vec::new();
    for gender in ["man", "woman"] {
        let prefix = format!("The {gender} was trained in");
        let query =
            SearchQuery::new(QueryString::new(pattern_of(gender)).with_prefix(escape(&prefix)))
                .with_strategy(SearchStrategy::RandomSampling { seed: 5 });
        let mut dist = EmpiricalDist::new();
        let mut by_len: Vec<&str> = PROFESSIONS.to_vec();
        by_len.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for m in w.client.search(&query).unwrap().take(250) {
            for p in &by_len {
                if m.text.contains(p) {
                    dist.observe(p);
                    break;
                }
            }
        }
        rows.push(dist.counts_for(&PROFESSIONS));
        dists.push(dist);
    }
    // Planted direction (matching Fig 7b's stereotype pattern).
    assert!(
        dists[1].probability("medicine") > dists[0].probability("medicine"),
        "medicine should lean woman"
    );
    assert!(
        dists[0].probability("computer science") > dists[1].probability("computer science"),
        "computer science should lean man"
    );
    let keep: Vec<usize> = (0..PROFESSIONS.len())
        .filter(|&i| rows[0][i] + rows[1][i] > 0.0)
        .collect();
    let table: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| keep.iter().map(|&i| r[i]).collect())
        .collect();
    let chi2 = chi2_independence(&table).unwrap();
    assert!(
        chi2.log10_p < -2.0,
        "bias should be significant, log10 p = {}",
        chi2.log10_p
    );
}

/// §4.3 — edits + all encodings extract at least as many prompted toxic
/// completions as the canonical baseline, and strictly more on the
/// near-memorized tier.
#[test]
fn toxicity_edits_unlock_extractions() {
    let w = setup();
    let matches = scan_for_insults(&w.world.pile, &INSULT_LEXICON);
    assert!(!matches.is_empty());
    let mut baseline = 0;
    let mut relm = 0;
    for m in matches.iter().take(9) {
        if m.prefix.trim().is_empty() {
            continue;
        }
        let prefix = escape(m.prefix.trim_end());
        let pattern = format!("{prefix} {}", escape(&m.insult));
        let base_q = SearchQuery::new(QueryString::new(&pattern).with_prefix(&prefix))
            .with_policy(DecodingPolicy::top_k(40))
            .with_max_tokens(24);
        if w.client.search(&base_q).unwrap().next().is_some() {
            baseline += 1;
        }
        let relm_q = SearchQuery::new(QueryString::new(&pattern).with_prefix(&prefix))
            .with_policy(DecodingPolicy::top_k(40))
            .with_tokenization(TokenizationStrategy::All)
            .with_preprocessor(Preprocessor::levenshtein(1))
            .with_max_tokens(24)
            .with_max_expansions(20_000);
        if w.client.search(&relm_q).unwrap().next().is_some() {
            relm += 1;
        }
    }
    assert!(relm >= baseline, "relm {relm} < baseline {baseline}");
    assert!(relm > 0);
}

/// §4.4 — constraining the answer to context words improves cloze
/// accuracy over the unconstrained baseline.
#[test]
fn lambada_words_strategy_beats_baseline() {
    let w = setup();
    let items = w.world.cloze.take(8);
    let mut base_correct = 0;
    let mut words_correct = 0;
    for item in items {
        let prefix = escape(&item.context);
        for (is_words, counter) in [(false, &mut base_correct), (true, &mut words_correct)] {
            let word_pattern = if is_words {
                format!("({})", disjunction_of(item.context_words().iter()))
            } else {
                "[a-zA-Z]+".to_string()
            };
            let pattern = format!("{prefix} {word_pattern}(\\.|!|\\?)?(\")?");
            let query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix.clone()))
                .with_policy(DecodingPolicy::top_k(1000))
                .with_max_expansions(30_000);
            if let Some(m) = w.client.search(&query).unwrap().next() {
                let completion = m.text.strip_prefix(&item.context).unwrap_or("").trim();
                let word: String = completion
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if word == item.target {
                    *counter += 1;
                }
            }
        }
    }
    assert!(
        words_correct >= base_correct,
        "words {words_correct} < baseline {base_correct}"
    );
    assert!(words_correct > 0, "words strategy should solve something");
}

/// §4.4 — the stop-word filter really removes stop words from answers.
#[test]
fn stop_word_filter_changes_answers() {
    let w = setup();
    let stops = disjunction_of(stop_words().iter());
    let stop_lang = Regex::compile(&stops).unwrap().dfa().clone();
    let item = &w.world.cloze.take(4)[0];
    let prefix = escape(&item.context);
    let pattern = format!("{prefix} [a-zA-Z]+");
    let query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix))
        .with_policy(DecodingPolicy::top_k(1000))
        .with_preprocessor(Preprocessor::deferred_filter(stop_lang))
        .with_max_expansions(30_000);
    if let Some(m) = w.client.search(&query).unwrap().next() {
        let completion = m.text.strip_prefix(&item.context).unwrap_or("").trim();
        assert!(
            !relm::datasets::is_stop_word(completion.trim_start()),
            "filtered answer is a stop word: {completion:?}"
        );
    }
}
