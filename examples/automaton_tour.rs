//! Automaton tour: rebuild the diagrams of Figures 3 and 12 — the full
//! (ambiguous) and canonical token automata for `The` and
//! `The ((cat)|(dog))` — and print them as Graphviz DOT.
//!
//! ```sh
//! cargo run --example automaton_tour | dot -Tpng > automata.png
//! ```

#![forbid(unsafe_code)]

use relm::compiler::{compile_canonical, compile_full, CanonicalLimits};
use relm::{dfa_to_dot, BpeTokenizer, Regex, TokenId};

fn main() -> Result<(), relm::RelmError> {
    // The tokenizer of Figure 3: tokens T, h, e, Th, he, The.
    let tokenizer = BpeTokenizer::from_merges(&[
        (TokenId::from(b'T'), TokenId::from(b'h')), // 256 = "Th"
        (TokenId::from(b'h'), TokenId::from(b'e')), // 257 = "he"
        (256, TokenId::from(b'e')),                 // 258 = "The"
    ]);
    let render = |sym: u32| -> String {
        String::from_utf8_lossy(tokenizer.token_bytes(sym)).replace(' ', "\u{2423}")
    };

    let the = Regex::compile("The")?;
    println!("// Figure 3a: full (ambiguous) encodings of \"The\"");
    let full = compile_full(the.dfa(), &tokenizer);
    println!("{}", dfa_to_dot(&full, "figure_3a_full", Some(&render)));

    println!("// Figure 3b: canonical encoding of \"The\"");
    let canonical = compile_canonical(the.dfa(), &tokenizer, CanonicalLimits::default());
    println!(
        "{}",
        dfa_to_dot(&canonical.automaton, "figure_3b_canonical", Some(&render))
    );

    // Figure 12: the ambiguous automaton for `The ((cat)|(dog))` with a
    // trained tokenizer (so " cat"/" dog" become real tokens).
    let corpus = "The cat and The dog and The cat and The dog";
    let trained = BpeTokenizer::train(corpus, 60);
    let render2 = |sym: u32| -> String {
        String::from_utf8_lossy(trained.token_bytes(sym)).replace(' ', "\u{2423}")
    };
    let query = Regex::compile("The ((cat)|(dog))")?;
    let full2 = compile_full(query.dfa(), &trained);
    println!("// Figure 12: full automaton for `The ((cat)|(dog))`");
    println!("{}", dfa_to_dot(&full2, "figure_12", Some(&render2)));

    eprintln!(
        "full(The): {} states / {} edges; canonical(The): {} states / {} edges",
        full.state_count(),
        full.transition_count(),
        canonical.automaton.state_count(),
        canonical.automaton.transition_count(),
    );
    Ok(())
}
