//! Serving ReLM queries over TCP: spawn a `RelmServer`, drive it with
//! concurrent protocol clients, and watch cross-client coalescing.
//!
//! Run with `cargo run --example serving`. For a standalone endpoint
//! and a scripted driver, see the `relm_server` / `relm_client` bins in
//! `crates/serve`.

#![forbid(unsafe_code)]

use relm::serve::{
    spawn, QueryRequest, RelmServer, Request, Response, ServeClient, ServerConfig, StrategySpec,
};
use relm::{BpeTokenizer, NGramConfig, NGramLm, Relm};

fn main() {
    let docs = [
        "the cat sat on the mat",
        "the cat sat on the mat",
        "the dog sat on the log",
        "the cow ate the grass",
    ];
    let corpus = docs.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 80);
    let model = NGramLm::train(&tokenizer, &docs, NGramConfig::xl());
    let client = Relm::builder(model, tokenizer).build().unwrap();

    // One server thread; concurrency comes from its coalescing driver,
    // not from a thread pool.
    let handle = spawn(
        RelmServer::with_config(client, ServerConfig::new()),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = handle.addr();
    println!("serving on {addr}");

    // Two concurrent clients, each pipelining an audit battery.
    std::thread::scope(|scope| {
        for t in 0u64..2 {
            scope.spawn(move || {
                let mut peer = ServeClient::connect(addr).unwrap();
                let requests = [
                    QueryRequest::new(1, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3),
                    QueryRequest::new(2, "the ((cat)|(dog)) sat on the ((mat)|(log))", 2)
                        .with_strategy(StrategySpec::Beam { width: 8 }),
                    QueryRequest::new(3, "the ((cat)|(dog)|(cow)) ((sat)|(ate))", 3)
                        .with_strategy(StrategySpec::Sampling { seed: 7 + t })
                        .with_max_tokens(16),
                ];
                for request in &requests {
                    peer.send(&Request::Query(request.clone())).unwrap();
                }
                for _ in 0..requests.len() {
                    if let Response::Matches { id, matches } = peer.recv().unwrap() {
                        for m in matches {
                            println!(
                                "client {t} query {id}: {:?} (log p = {:.4})",
                                m.text,
                                m.log_prob()
                            );
                        }
                    }
                }
            });
        }
    });

    let report = handle.stop().unwrap();
    println!(
        "server: {} queries over {} connections, mean batch fill {:.2}, \
         {} cross-query batches",
        report.completed, report.accepted, report.mean_batch_fill, report.cross_query_batches
    );
}
