//! Constrained decoding beyond validation (§3: "While ReLM is motivated
//! by LLM validation, it can be used in other constrained decoding
//! applications (e.g., generation from keywords)").
//!
//! This example generates sentences that are *guaranteed* to contain
//! given keywords, pulls structured completions (a date, then a
//! key-value form), and prints the query plan for each — all with the
//! same search API the validation tasks use.
//!
//! ```sh
//! cargo run --release --example constrained_generation
//! ```

#![forbid(unsafe_code)]

use relm::{
    explain, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, QueryString, Relm, SearchQuery,
    SearchStrategy,
};

fn main() -> Result<(), relm::RelmError> {
    let documents = [
        "the harbor was quiet at dawn",
        "the harbor was busy at noon",
        "a ship arrived at the harbor today",
        "the lighthouse guided the ship home",
        "the ship left the harbor at dawn",
        "report filed on May 14, 2019",
        "report filed on May 21, 2019",
    ];
    let corpus = documents.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 200);
    let model = NGramLm::train(&tokenizer, &documents, NGramConfig::xl());
    let client = Relm::new(model, tokenizer.clone())?;

    // 1. Keyword-constrained generation: a sentence over the corpus
    //    vocabulary that MUST contain "ship" and then "harbor".
    let keyword_query = SearchQuery::new(QueryString::new(
        "([a-z]+ ){0,3}ship ([a-z]+ ){0,3}harbor( [a-z]+){0,2}",
    ))
    .with_policy(DecodingPolicy::top_k(50))
    .with_max_tokens(24)
    .with_max_expansions(50_000);
    println!("--- keyword constraint: ship … harbor ---");
    println!("{}\n", explain(&keyword_query, &tokenizer, 128)?);
    for m in client.search(&keyword_query)?.take(3) {
        println!("  {:?}  (log p = {:.2})", m.text, m.log_prob);
    }

    // 2. Structured completion: force a well-formed date.
    let date_query = SearchQuery::new(
        QueryString::new("report filed on May [0-9]{1,2}, [0-9]{4}").with_prefix("report filed on"),
    )
    .with_policy(DecodingPolicy::top_k(100));
    println!("\n--- structured completion: a date ---");
    for m in client.search(&date_query)?.take(2) {
        println!("  {:?}  (log p = {:.2})", m.text, m.log_prob);
    }

    // 3. Beam-search generation (bounded memory) over the same query.
    let beam_query = date_query.with_strategy(SearchStrategy::Beam { width: 16 });
    println!("\n--- same query, beam traversal ---");
    for m in client.search(&beam_query)?.take(2) {
        println!("  {:?}  (log p = {:.2})", m.text, m.log_prob);
    }
    Ok(())
}
