//! Memorization audit (§4.1): extract memorized URLs with ReLM's
//! shortest-path traversal and compare against random-sampling baselines.
//!
//! ```sh
//! cargo run --release --example memorization_audit
//! ```

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use relm::datasets::{CorpusSpec, SyntheticWorld};
use relm::{
    sample_sequence, AcceleratorSim, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm,
    QueryString, Relm, SearchQuery,
};
use std::collections::HashSet;

const URL_PATTERN: &str = "https://www\\.([a-zA-Z0-9]|_|-|#|%)+\\.([a-zA-Z0-9]|_|-|#|%|/)+";

fn main() -> Result<(), relm::RelmError> {
    let world = SyntheticWorld::generate(&CorpusSpec::small());
    let corpus = world.joined_corpus();
    let tokenizer = BpeTokenizer::train(&corpus, 300);
    let model = NGramLm::train(&tokenizer, &world.document_refs(), NGramConfig::xl());
    let client = Relm::new(&model, tokenizer.clone())?;

    // --- ReLM: structured query, shortest path, top-k 40 ---
    let query = SearchQuery::new(QueryString::new(URL_PATTERN).with_prefix("https://www\\."))
        .with_policy(DecodingPolicy::top_k(40))
        .with_max_tokens(24);
    let mut gpu = AcceleratorSim::new();
    let mut relm_valid = Vec::new();
    let mut results = client.search(&query)?;
    for m in (&mut results).take(30) {
        gpu.forward(1);
        if world.urls.is_valid(&m.text) {
            relm_valid.push(m.text.clone());
        }
    }
    let stats = results.stats();
    // Account the real inference work on the simulated accelerator.
    for _ in 0..stats.lm_calls {
        gpu.forward(1);
    }
    println!("ReLM (shortest path):");
    println!("  validated URLs: {}", relm_valid.len());
    println!(
        "  lm calls: {}, simulated seconds: {:.2}",
        stats.lm_calls,
        gpu.elapsed_secs()
    );
    for url in relm_valid.iter().take(5) {
        println!("    {url}");
    }

    // --- Baseline: random sampling with a stop length (HF-style) ---
    let mut rng = SmallRng::seed_from_u64(0);
    let prefix = tokenizer.encode("see https://www.");
    let mut baseline_valid: HashSet<String> = HashSet::new();
    let mut baseline_gpu = AcceleratorSim::new();
    let attempts = 200;
    for _ in 0..attempts {
        let generated = sample_sequence(&model, DecodingPolicy::top_k(40), &prefix, 16, &mut rng);
        for _ in 0..generated.len() {
            baseline_gpu.forward(1);
        }
        let text = format!("https://www.{}", tokenizer.decode(&generated));
        // Trim at whitespace: the baseline has no structure, so URLs end
        // wherever the model wanders off.
        let candidate = text.split_whitespace().next().unwrap_or("").to_string();
        if world.urls.is_valid(&candidate) {
            baseline_valid.insert(candidate);
        }
    }
    println!("\nBaseline (random sampling, n = 16, {attempts} attempts):");
    println!("  unique validated URLs: {}", baseline_valid.len());
    println!("  simulated seconds: {:.2}", baseline_gpu.elapsed_secs());

    let relm_rate = relm_valid.len() as f64 / gpu.elapsed_secs().max(1e-9);
    let base_rate = baseline_valid.len() as f64 / baseline_gpu.elapsed_secs().max(1e-9);
    println!(
        "\nThroughput (validated URLs/simulated second): ReLM {relm_rate:.2} vs baseline {base_rate:.2}"
    );
    Ok(())
}
