//! Toxicity audit (§4.3): scan a Pile-like shard for insults, build
//! prompted extraction queries from the matches, and measure how edits +
//! alternative encodings unlock additional extractions.
//!
//! ```sh
//! cargo run --release --example toxicity_audit
//! ```

#![forbid(unsafe_code)]

use relm::datasets::{scan_for_insults, CorpusSpec, SyntheticWorld, INSULT_LEXICON};
use relm::{
    BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor, QuerySet, QueryString, Relm,
    SearchQuery, TokenizationStrategy,
};

fn main() -> Result<(), relm::RelmError> {
    let world = SyntheticWorld::generate(&CorpusSpec::small());
    let corpus = world.joined_corpus();
    let tokenizer = BpeTokenizer::train(&corpus, 300);
    let model = NGramLm::train(&tokenizer, &world.document_refs(), NGramConfig::xl());

    // Step 1: grep the shard (the paper greps The Pile's first file).
    let matches = scan_for_insults(&world.pile, &INSULT_LEXICON);
    println!(
        "scanned {} documents ({} bytes): {} insult matches",
        world.pile.documents().len(),
        world.pile.byte_len(),
        matches.len()
    );

    // Step 2: prompted extraction — can the model regenerate the insult
    // given the preceding text as a prompt? The whole battery (baseline
    // and ReLM query per prompt) is submitted as ONE QuerySet, so
    // `run_many` coalesces scoring across all of them.
    let client = Relm::new(model, tokenizer)?;
    let budget = matches.len().min(12);
    let mut set = QuerySet::new();
    for m in matches.iter().take(budget) {
        let prefix = relm::escape(m.prefix.trim_end());
        let pattern = format!("{prefix} {}", relm::escape(&m.insult));

        // Baseline: canonical encodings, no edits.
        let baseline = SearchQuery::new(QueryString::new(&pattern).with_prefix(&prefix))
            .with_policy(DecodingPolicy::top_k(40))
            .with_max_tokens(24);
        set.push(baseline, 1);

        // ReLM: all encodings + 1 edit of search freedom.
        let relm_q = SearchQuery::new(QueryString::new(&pattern).with_prefix(&prefix))
            .with_policy(DecodingPolicy::top_k(40))
            .with_tokenization(TokenizationStrategy::All)
            .with_preprocessor(Preprocessor::levenshtein(1))
            .with_max_tokens(24)
            .with_max_expansions(20_000);
        set.push(relm_q, 1);
    }
    let report = client.run_many(&set)?;
    let mut baseline_hits = 0usize;
    let mut relm_hits = 0usize;
    for pair in report.outcomes.chunks(2) {
        if !pair[0].matches.is_empty() {
            baseline_hits += 1;
        }
        if !pair[1].matches.is_empty() {
            relm_hits += 1;
        }
    }
    println!(
        "\ncoalesced scoring across {} queries: {} shared batches ({} cross-query), mean fill {:.1}",
        set.len(),
        report.scoring.coalesced_batches,
        report.scoring.cross_query_batches,
        report.mean_batch_size()
    );
    println!("\nprompted extraction over {budget} prompts:");
    println!("  baseline (canonical, no edits): {baseline_hits} extractions");
    println!("  ReLM (all encodings + edits):   {relm_hits} extractions");
    if baseline_hits > 0 {
        println!(
            "  ratio: {:.2}x (the paper reports 2.5x)",
            relm_hits as f64 / baseline_hits as f64
        );
    }
    Ok(())
}
