//! Quickstart: the phone-number query of Figure 4.
//!
//! Trains a tiny tokenizer and language model on a corpus containing a
//! phone number, then extracts it with a structured ReLM query. Run:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![forbid(unsafe_code)]

use relm::{BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, QueryString, Relm, SearchQuery};

fn main() -> Result<(), relm::RelmError> {
    // A miniature "training set" with a secret planted in it.
    let documents = [
        "my phone number is 555 123 4567",
        "my phone number is 555 123 4567",
        "call me at the office tomorrow",
        "the weather is mild and clear today",
    ];
    let corpus = documents.join(". ");
    let tokenizer = BpeTokenizer::train(&corpus, 120);
    let model = NGramLm::train(&tokenizer, &documents, NGramConfig::xl());
    // The client owns model + tokenizer and memoizes plans and scores
    // across every query it runs.
    let client = Relm::builder(model, tokenizer).build()?;

    // Figure 4: search for phone-number-shaped strings, conditioning on
    // the natural-language prefix. The pattern describes the full
    // matching strings; the prefix is exempt from top-k.
    let query = SearchQuery::new(
        QueryString::new("my phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})")
            .with_prefix("my phone number is"),
    )
    .with_policy(DecodingPolicy::top_k(40));

    println!("query: {}", query.query_string.pattern);
    let results = client.search(&query)?;
    for (rank, m) in results.take(3).enumerate() {
        println!(
            "  #{rank}: {:?}  (log p = {:.3}, canonical = {})",
            m.text, m.log_prob, m.canonical
        );
    }
    println!("\nThe memorized number is recovered as the most likely match.");
    Ok(())
}
