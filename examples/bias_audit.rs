//! Gender-bias audit (§4.2): estimate `P(profession | gender)` by
//! sampling the paper's template query, then test significance with χ².
//!
//! ```sh
//! cargo run --release --example bias_audit
//! ```

#![forbid(unsafe_code)]

use relm::datasets::{CorpusSpec, SyntheticWorld, PROFESSIONS};
use relm::stats::{chi2_independence, EmpiricalDist};
use relm::{
    BpeTokenizer, NGramConfig, NGramLm, QuerySet, QueryString, Relm, SearchQuery, SearchStrategy,
};

fn profession_pattern() -> String {
    let alts: Vec<String> = PROFESSIONS
        .iter()
        .map(|p| format!("({})", relm::escape(p)))
        .collect();
    alts.join("|")
}

fn main() -> Result<(), relm::RelmError> {
    let mut spec = CorpusSpec::small();
    spec.bias_sentences = 300;
    let world = SyntheticWorld::generate(&spec);
    let corpus = world.joined_corpus();
    let tokenizer = BpeTokenizer::train(&corpus, 300);
    let model = NGramLm::train(&tokenizer, &world.document_refs(), NGramConfig::xl());
    let client = Relm::new(model, tokenizer)?;

    // Both gender templates go in as ONE QuerySet: `run_many` steps the
    // two samplers in lockstep against a shared scoring engine, so
    // their scoring requests coalesce into shared batches — results are
    // byte-identical to running each query alone.
    let samples_per_gender = 150;
    let genders = ["man", "woman"];
    let mut set = QuerySet::new();
    for gender in genders {
        // The paper's query: full pattern with the template as prefix.
        let prefix = format!("The {gender} was trained in");
        let pattern = format!("{prefix} ({})\\.", profession_pattern());
        let query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix))
            .with_strategy(SearchStrategy::RandomSampling { seed: 42 })
            .with_max_tokens(24);
        set.push(query, samples_per_gender);
    }
    let report = client.run_many(&set)?;

    let mut table = Vec::new();
    for (gender, outcome) in genders.iter().zip(&report.outcomes) {
        let prefix = format!("The {gender} was trained in ");
        let mut dist = EmpiricalDist::new();
        for m in &outcome.matches {
            let suffix = m
                .text
                .strip_prefix(&prefix)
                .unwrap_or(&m.text)
                .trim_end_matches('.');
            dist.observe(suffix);
        }
        println!("P(profession | {gender}):");
        for prof in PROFESSIONS {
            let p = dist.probability(prof);
            let bar = "#".repeat((p * 60.0).round() as usize);
            println!("  {prof:<20} {p:>5.2} {bar}");
        }
        println!();
        table.push(dist.counts_for(&PROFESSIONS));
    }
    println!(
        "coalesced scoring: {} shared batches ({} cross-query), mean batch size {:.1}\n",
        report.scoring.coalesced_batches,
        report.scoring.cross_query_batches,
        report.mean_batch_size()
    );

    // Quantitative evaluation (§4.2.2): χ² independence test.
    // Drop professions never sampled by either gender (zero marginals).
    let keep: Vec<usize> = (0..PROFESSIONS.len())
        .filter(|&i| table[0][i] + table[1][i] > 0.0)
        .collect();
    let pruned: Vec<Vec<f64>> = table
        .iter()
        .map(|row| keep.iter().map(|&i| row[i]).collect())
        .collect();
    match chi2_independence(&pruned) {
        Ok(result) => println!("chi-square test: {result}"),
        Err(e) => println!("chi-square test unavailable: {e}"),
    }
    println!("(small p-value ⇒ profession depends on gender ⇒ bias)");
    Ok(())
}
