//! Language understanding (§4.4): LAMBADA-like zero-shot last-word
//! prediction under the paper's four query formulations — `baseline`,
//! `words`, `terminated`, and `no stop` — reproducing Table 1's monotone
//! accuracy improvements.
//!
//! ```sh
//! cargo run --release --example lambada_cloze
//! ```

#![forbid(unsafe_code)]

use relm::datasets::{stop_words, CorpusSpec, SyntheticWorld};
use relm::{
    disjunction_of, escape, BpeTokenizer, DecodingPolicy, NGramConfig, NGramLm, Preprocessor,
    QueryString, Regex, Relm, SearchQuery,
};

/// One query formulation from §4.4.
#[derive(Clone, Copy)]
enum Strategy {
    Baseline,
    Words,
    Terminated,
    NoStop,
}

fn predict(
    client: &Relm<NGramLm>,
    context: &str,
    words: &[String],
    strategy: Strategy,
) -> Option<String> {
    let prefix = escape(context);
    let word_pattern = match strategy {
        Strategy::Baseline => "[a-zA-Z]+".to_string(),
        _ => format!("({})", disjunction_of(words.iter())),
    };
    let pattern = format!("{prefix} {word_pattern}(\\.|!|\\?)?(\")?");
    let mut query = SearchQuery::new(QueryString::new(pattern).with_prefix(prefix))
        .with_policy(DecodingPolicy::top_k(1000));
    if matches!(strategy, Strategy::Terminated | Strategy::NoStop) {
        // The completion must be a *final* word: score includes p(EOS).
        query = query.with_eos_termination();
    }
    if matches!(strategy, Strategy::NoStop) {
        let stops = disjunction_of(stop_words().iter());
        let stop_lang = Regex::compile(&stops).ok()?.dfa().clone();
        query = query.with_preprocessor(Preprocessor::deferred_filter(stop_lang));
    }
    let m = client.search(&query).ok()?.take(1).next()?;
    let completion = m.text.strip_prefix(context)?.trim();
    let word: String = completion
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect();
    Some(word)
}

fn main() -> Result<(), relm::RelmError> {
    let mut spec = CorpusSpec::small();
    spec.cloze_items = 30;
    let world = SyntheticWorld::generate(&spec);
    let corpus = world.joined_corpus();
    let tokenizer = BpeTokenizer::train(&corpus, 300);
    let model = NGramLm::train(&tokenizer, &world.document_refs(), NGramConfig::xl());
    // One client for the whole battery: all 4 x 30 queries share its
    // plan memo and scoring cache.
    let client = Relm::new(model, tokenizer)?;

    let items = world.cloze.take(30);
    println!("evaluating {} cloze items\n", items.len());
    println!("{:<12} {:>9}", "strategy", "accuracy");
    for (name, strategy) in [
        ("baseline", Strategy::Baseline),
        ("words", Strategy::Words),
        ("terminated", Strategy::Terminated),
        ("no stop", Strategy::NoStop),
    ] {
        let mut correct = 0usize;
        for item in items {
            let words = item.context_words();
            if let Some(pred) = predict(&client, &item.context, &words, strategy) {
                if pred == item.target {
                    correct += 1;
                }
            }
        }
        println!(
            "{name:<12} {:>8.1}%",
            100.0 * correct as f64 / items.len() as f64
        );
    }
    println!("\n(Table 1 of the paper shows the same monotone improvement.)");
    let stats = client.stats();
    println!(
        "client reuse: {} plans compiled, {} memo hits; scoring cache {:.0}% hit rate",
        stats.plan_misses,
        stats.plan_hits,
        100.0 * stats.scoring.hit_rate()
    );
    Ok(())
}
